// AVX2 variants of the fused MMSIM sweeps: 4-wide double (bitwise equal to
// the scalar fused path) and 8-wide float (mixed-precision iterate).
// Compiled with -mavx2 -ffp-contract=off; entered only through
// mmsim_simd_kernels() after the runtime CPU check. Lane masking uses
// full-width compare masks + maskstore / and-select (no AVX-512 opmask);
// masked-out lanes of the delta fold contribute 0.0, which is neutral for
// the nonnegative max. See mmsim_kernels.h for the contracts.
#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "lcp/mmsim_kernels.h"

#if defined(MCH_SIMD_X86)

namespace mch::lcp::kernels {
namespace {

inline double dmax(double a, double b) { return a < b ? b : a; }
inline float fmax_(float a, float b) { return a < b ? b : a; }
inline double dabs(double a) { return __builtin_fabs(a); }
inline float fabs_(float a) { return __builtin_fabsf(a); }

inline __m256d vabs(__m256d v) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
}
inline __m256 vabsf(__m256 v) {
  return _mm256_andnot_ps(_mm256_set1_ps(-0.0f), v);
}

inline double hmax4(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d m = _mm_max_pd(lo, hi);
  const __m128d s = _mm_max_sd(m, _mm_unpackhi_pd(m, m));
  return _mm_cvtsd_f64(s);
}

inline float hmax8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 m = _mm_max_ps(lo, hi);
  m = _mm_max_ps(m, _mm_movehl_ps(m, m));
  m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
  return _mm_cvtss_f32(m);
}

/// Full-width keep mask (all-ones where general[i] == 0) for 4 double lanes.
inline __m256d keep_mask4(const unsigned char* general) {
  std::uint32_t raw;
  std::memcpy(&raw, general, 4);
  const __m128i g4 = _mm_cvtepu8_epi32(_mm_cvtsi32_si128(int(raw)));
  const __m128i eq = _mm_cmpeq_epi32(g4, _mm_setzero_si128());
  return _mm256_castsi256_pd(_mm256_cvtepi32_epi64(eq));
}

/// Keep mask for 8 float lanes.
inline __m256i keep_mask8(const unsigned char* general) {
  const __m128i g8 =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(general));
  const __m256i wide = _mm256_cvtepu8_epi32(g8);
  return _mm256_cmpeq_epi32(wide, _mm256_setzero_si256());
}

// ---------------------------------------------------------------- double --

double primal(const PrimalCtx& c, std::size_t lo, std::size_t hi) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d vc1 = _mm256_set1_pd(c.c1);
  const __m256d vneg1 = _mm256_set1_pd(-1.0);
  const __m256d vgamma = _mm256_set1_pd(c.gamma);
  const __m256d vinvg = _mm256_set1_pd(c.inv_gamma);
  __m256d vbest = zero;
  std::size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    const __m256d keep = keep_mask4(c.general + i);
    if (_mm256_movemask_pd(keep) == 0) continue;
    const __m256d s1 = _mm256_loadu_pd(c.s1 + i);
    const __m256d a1 = vabs(s1);
    const __m128i i0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(c.bt_c0 + i));
    const __m128i i1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(c.bt_c1 + i));
    const __m256d x0 = _mm256_i32gather_pd(c.s2, i0, 8);
    const __m256d x1 = _mm256_i32gather_pd(c.s2, i1, 8);
    const __m256d v0 = _mm256_loadu_pd(c.bt_v0 + i);
    const __m256d v1 = _mm256_loadu_pd(c.bt_v1 + i);
    __m256d g_s2 = _mm256_add_pd(zero, _mm256_mul_pd(v0, x0));
    g_s2 = _mm256_add_pd(g_s2, _mm256_mul_pd(v1, x1));
    __m256d g_abs = _mm256_add_pd(zero, _mm256_mul_pd(v0, vabs(x0)));
    g_abs = _mm256_add_pd(g_abs, _mm256_mul_pd(v1, vabs(x1)));
    const __m256d kv = _mm256_loadu_pd(c.kv + i);
    __m256d r = _mm256_add_pd(zero, _mm256_mul_pd(_mm256_mul_pd(vc1, kv), s1));
    r = _mm256_add_pd(r, g_s2);
    r = _mm256_add_pd(r, a1);
    r = _mm256_add_pd(r, _mm256_mul_pd(_mm256_mul_pd(vneg1, kv), a1));
    r = _mm256_add_pd(r, g_abs);
    r = _mm256_sub_pd(r, _mm256_mul_pd(vgamma, _mm256_loadu_pd(c.p + i)));
    const __m256d ns = _mm256_mul_pd(_mm256_loadu_pd(c.siv + i), r);
    _mm256_maskstore_pd(c.new_s1 + i, _mm256_castpd_si256(keep), ns);
    const __m256d zi = _mm256_mul_pd(_mm256_add_pd(vabs(ns), ns), vinvg);
    const __m256d diff = vabs(_mm256_sub_pd(zi, _mm256_loadu_pd(c.z + i)));
    _mm256_maskstore_pd(c.z + i, _mm256_castpd_si256(keep), zi);
    vbest = _mm256_max_pd(vbest, _mm256_and_pd(keep, diff));
  }
  double best = hmax4(vbest);
  for (; i < hi; ++i) {
    if (c.general[i]) continue;
    const double s1i = c.s1[i];
    const double a1 = dabs(s1i);
    double g_s2 = 0.0;
    double g_abs = 0.0;
    g_s2 += c.bt_v0[i] * c.s2[c.bt_c0[i]];
    g_abs += c.bt_v0[i] * dabs(c.s2[c.bt_c0[i]]);
    g_s2 += c.bt_v1[i] * c.s2[c.bt_c1[i]];
    g_abs += c.bt_v1[i] * dabs(c.s2[c.bt_c1[i]]);
    double r = 0.0;
    r += c.c1 * c.kv[i] * s1i;
    r += g_s2;
    r += a1;
    r += -1.0 * c.kv[i] * a1;
    r += g_abs;
    r -= c.gamma * c.p[i];
    const double ns = c.siv[i] * r;
    c.new_s1[i] = ns;
    const double zi = (dabs(ns) + ns) * c.inv_gamma;
    best = dmax(best, dabs(zi - c.z[i]));
    c.z[i] = zi;
  }
  return best;
}

inline void dual_rhs_lane(const DualRhsCtx& c, std::size_t i) {
  double sum = c.diag[i] * c.s2[i];
  if (i > 0) sum += c.lower[i - 1] * c.s2[i - 1];
  if (i + 1 < c.m) sum += c.upper[i] * c.s2[i + 1];
  double t = c.inv_theta * sum + dabs(c.s2[i]) + c.gamma * c.b[i];
  double g_abs = 0.0;
  double g_used = 0.0;
  g_abs += c.b_v0[i] * dabs(c.s1[c.b_c0[i]]);
  g_used += c.b_v0[i] * c.s1_used[c.b_c0[i]];
  g_abs += c.b_v1[i] * dabs(c.s1[c.b_c1[i]]);
  g_used += c.b_v1[i] * c.s1_used[c.b_c1[i]];
  t += -1.0 * g_abs;
  t += -1.0 * g_used;
  c.rhs2[i] = t;
}

void dual_rhs(const DualRhsCtx& c, std::size_t lo, std::size_t hi) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d vneg1 = _mm256_set1_pd(-1.0);
  const __m256d vtheta = _mm256_set1_pd(c.inv_theta);
  const __m256d vgamma = _mm256_set1_pd(c.gamma);
  std::size_t i = lo;
  if (i == 0 && i < hi) {
    dual_rhs_lane(c, i);
    ++i;
  }
  const std::size_t vec_hi = hi == c.m ? (hi > 0 ? hi - 1 : 0) : hi;
  for (; i + 4 <= vec_hi; i += 4) {
    const __m256d s2 = _mm256_loadu_pd(c.s2 + i);
    __m256d sum = _mm256_mul_pd(_mm256_loadu_pd(c.diag + i), s2);
    sum = _mm256_add_pd(sum, _mm256_mul_pd(_mm256_loadu_pd(c.lower + i - 1),
                                           _mm256_loadu_pd(c.s2 + i - 1)));
    sum = _mm256_add_pd(sum, _mm256_mul_pd(_mm256_loadu_pd(c.upper + i),
                                           _mm256_loadu_pd(c.s2 + i + 1)));
    __m256d t = _mm256_add_pd(_mm256_mul_pd(vtheta, sum), vabs(s2));
    t = _mm256_add_pd(t, _mm256_mul_pd(vgamma, _mm256_loadu_pd(c.b + i)));
    const __m128i i0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(c.b_c0 + i));
    const __m128i i1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(c.b_c1 + i));
    const __m256d u0 = _mm256_i32gather_pd(c.s1, i0, 8);
    const __m256d u1 = _mm256_i32gather_pd(c.s1, i1, 8);
    const __m256d w0 = _mm256_i32gather_pd(c.s1_used, i0, 8);
    const __m256d w1 = _mm256_i32gather_pd(c.s1_used, i1, 8);
    const __m256d v0 = _mm256_loadu_pd(c.b_v0 + i);
    const __m256d v1 = _mm256_loadu_pd(c.b_v1 + i);
    __m256d g_abs = _mm256_add_pd(zero, _mm256_mul_pd(v0, vabs(u0)));
    g_abs = _mm256_add_pd(g_abs, _mm256_mul_pd(v1, vabs(u1)));
    __m256d g_used = _mm256_add_pd(zero, _mm256_mul_pd(v0, w0));
    g_used = _mm256_add_pd(g_used, _mm256_mul_pd(v1, w1));
    t = _mm256_add_pd(t, _mm256_mul_pd(vneg1, g_abs));
    t = _mm256_add_pd(t, _mm256_mul_pd(vneg1, g_used));
    _mm256_storeu_pd(c.rhs2 + i, t);
  }
  for (; i < hi; ++i) dual_rhs_lane(c, i);
}

double dual_z(const DualZCtx& c, std::size_t lo, std::size_t hi) {
  const __m256d vinvg = _mm256_set1_pd(c.inv_gamma);
  __m256d vbest = _mm256_setzero_pd();
  std::size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    const __m256d ns = _mm256_loadu_pd(c.new_s2 + i);
    const __m256d zi = _mm256_mul_pd(_mm256_add_pd(vabs(ns), ns), vinvg);
    const __m256d diff = vabs(_mm256_sub_pd(zi, _mm256_loadu_pd(c.z + i)));
    _mm256_storeu_pd(c.z + i, zi);
    vbest = _mm256_max_pd(vbest, diff);
  }
  double best = hmax4(vbest);
  for (; i < hi; ++i) {
    const double ns = c.new_s2[i];
    const double zi = (dabs(ns) + ns) * c.inv_gamma;
    best = dmax(best, dabs(zi - c.z[i]));
    c.z[i] = zi;
  }
  return best;
}

// ----------------------------------------------------------------- float --

float primal_f(const PrimalCtxF& c, std::size_t lo, std::size_t hi) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 vc1 = _mm256_set1_ps(c.c1);
  const __m256 vneg1 = _mm256_set1_ps(-1.0f);
  const __m256 vgamma = _mm256_set1_ps(c.gamma);
  const __m256 vinvg = _mm256_set1_ps(c.inv_gamma);
  __m256 vbest = zero;
  std::size_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    const __m256i keep = keep_mask8(c.general + i);
    if (_mm256_movemask_ps(_mm256_castsi256_ps(keep)) == 0) continue;
    const __m256 s1 = _mm256_loadu_ps(c.s1 + i);
    const __m256 a1 = vabsf(s1);
    const __m256i i0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c.bt_c0 + i));
    const __m256i i1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c.bt_c1 + i));
    const __m256 x0 = _mm256_i32gather_ps(c.s2, i0, 4);
    const __m256 x1 = _mm256_i32gather_ps(c.s2, i1, 4);
    const __m256 v0 = _mm256_loadu_ps(c.bt_v0 + i);
    const __m256 v1 = _mm256_loadu_ps(c.bt_v1 + i);
    __m256 g_s2 = _mm256_add_ps(zero, _mm256_mul_ps(v0, x0));
    g_s2 = _mm256_add_ps(g_s2, _mm256_mul_ps(v1, x1));
    __m256 g_abs = _mm256_add_ps(zero, _mm256_mul_ps(v0, vabsf(x0)));
    g_abs = _mm256_add_ps(g_abs, _mm256_mul_ps(v1, vabsf(x1)));
    const __m256 kv = _mm256_loadu_ps(c.kv + i);
    __m256 r = _mm256_add_ps(zero, _mm256_mul_ps(_mm256_mul_ps(vc1, kv), s1));
    r = _mm256_add_ps(r, g_s2);
    r = _mm256_add_ps(r, a1);
    r = _mm256_add_ps(r, _mm256_mul_ps(_mm256_mul_ps(vneg1, kv), a1));
    r = _mm256_add_ps(r, g_abs);
    r = _mm256_sub_ps(r, _mm256_mul_ps(vgamma, _mm256_loadu_ps(c.p + i)));
    const __m256 ns = _mm256_mul_ps(_mm256_loadu_ps(c.siv + i), r);
    _mm256_maskstore_ps(c.new_s1 + i, keep, ns);
    const __m256 zi = _mm256_mul_ps(_mm256_add_ps(vabsf(ns), ns), vinvg);
    const __m256 diff = vabsf(_mm256_sub_ps(zi, _mm256_loadu_ps(c.z + i)));
    _mm256_maskstore_ps(c.z + i, keep, zi);
    vbest = _mm256_max_ps(vbest, _mm256_and_ps(_mm256_castsi256_ps(keep), diff));
  }
  float best = hmax8(vbest);
  for (; i < hi; ++i) {
    if (c.general[i]) continue;
    const float s1i = c.s1[i];
    const float a1 = fabs_(s1i);
    float g_s2 = 0.0f;
    float g_abs = 0.0f;
    g_s2 += c.bt_v0[i] * c.s2[c.bt_c0[i]];
    g_abs += c.bt_v0[i] * fabs_(c.s2[c.bt_c0[i]]);
    g_s2 += c.bt_v1[i] * c.s2[c.bt_c1[i]];
    g_abs += c.bt_v1[i] * fabs_(c.s2[c.bt_c1[i]]);
    float r = 0.0f;
    r += c.c1 * c.kv[i] * s1i;
    r += g_s2;
    r += a1;
    r += -1.0f * c.kv[i] * a1;
    r += g_abs;
    r -= c.gamma * c.p[i];
    const float ns = c.siv[i] * r;
    c.new_s1[i] = ns;
    const float zi = (fabs_(ns) + ns) * c.inv_gamma;
    best = fmax_(best, fabs_(zi - c.z[i]));
    c.z[i] = zi;
  }
  return best;
}

inline void dual_rhs_lane_f(const DualRhsCtxF& c, std::size_t i) {
  float sum = c.diag[i] * c.s2[i];
  if (i > 0) sum += c.lower[i - 1] * c.s2[i - 1];
  if (i + 1 < c.m) sum += c.upper[i] * c.s2[i + 1];
  float t = c.inv_theta * sum + fabs_(c.s2[i]) + c.gamma * c.b[i];
  float g_abs = 0.0f;
  float g_used = 0.0f;
  g_abs += c.b_v0[i] * fabs_(c.s1[c.b_c0[i]]);
  g_used += c.b_v0[i] * c.s1_used[c.b_c0[i]];
  g_abs += c.b_v1[i] * fabs_(c.s1[c.b_c1[i]]);
  g_used += c.b_v1[i] * c.s1_used[c.b_c1[i]];
  t += -1.0f * g_abs;
  t += -1.0f * g_used;
  c.rhs2[i] = t;
}

void dual_rhs_f(const DualRhsCtxF& c, std::size_t lo, std::size_t hi) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 vneg1 = _mm256_set1_ps(-1.0f);
  const __m256 vtheta = _mm256_set1_ps(c.inv_theta);
  const __m256 vgamma = _mm256_set1_ps(c.gamma);
  std::size_t i = lo;
  if (i == 0 && i < hi) {
    dual_rhs_lane_f(c, i);
    ++i;
  }
  const std::size_t vec_hi = hi == c.m ? (hi > 0 ? hi - 1 : 0) : hi;
  for (; i + 8 <= vec_hi; i += 8) {
    const __m256 s2 = _mm256_loadu_ps(c.s2 + i);
    __m256 sum = _mm256_mul_ps(_mm256_loadu_ps(c.diag + i), s2);
    sum = _mm256_add_ps(sum, _mm256_mul_ps(_mm256_loadu_ps(c.lower + i - 1),
                                           _mm256_loadu_ps(c.s2 + i - 1)));
    sum = _mm256_add_ps(sum, _mm256_mul_ps(_mm256_loadu_ps(c.upper + i),
                                           _mm256_loadu_ps(c.s2 + i + 1)));
    __m256 t = _mm256_add_ps(_mm256_mul_ps(vtheta, sum), vabsf(s2));
    t = _mm256_add_ps(t, _mm256_mul_ps(vgamma, _mm256_loadu_ps(c.b + i)));
    const __m256i i0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c.b_c0 + i));
    const __m256i i1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c.b_c1 + i));
    const __m256 u0 = _mm256_i32gather_ps(c.s1, i0, 4);
    const __m256 u1 = _mm256_i32gather_ps(c.s1, i1, 4);
    const __m256 w0 = _mm256_i32gather_ps(c.s1_used, i0, 4);
    const __m256 w1 = _mm256_i32gather_ps(c.s1_used, i1, 4);
    const __m256 v0 = _mm256_loadu_ps(c.b_v0 + i);
    const __m256 v1 = _mm256_loadu_ps(c.b_v1 + i);
    __m256 g_abs = _mm256_add_ps(zero, _mm256_mul_ps(v0, vabsf(u0)));
    g_abs = _mm256_add_ps(g_abs, _mm256_mul_ps(v1, vabsf(u1)));
    __m256 g_used = _mm256_add_ps(zero, _mm256_mul_ps(v0, w0));
    g_used = _mm256_add_ps(g_used, _mm256_mul_ps(v1, w1));
    t = _mm256_add_ps(t, _mm256_mul_ps(vneg1, g_abs));
    t = _mm256_add_ps(t, _mm256_mul_ps(vneg1, g_used));
    _mm256_storeu_ps(c.rhs2 + i, t);
  }
  for (; i < hi; ++i) dual_rhs_lane_f(c, i);
}

float dual_z_f(const DualZCtxF& c, std::size_t lo, std::size_t hi) {
  const __m256 vinvg = _mm256_set1_ps(c.inv_gamma);
  __m256 vbest = _mm256_setzero_ps();
  std::size_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    const __m256 ns = _mm256_loadu_ps(c.new_s2 + i);
    const __m256 zi = _mm256_mul_ps(_mm256_add_ps(vabsf(ns), ns), vinvg);
    const __m256 diff = vabsf(_mm256_sub_ps(zi, _mm256_loadu_ps(c.z + i)));
    _mm256_storeu_ps(c.z + i, zi);
    vbest = _mm256_max_ps(vbest, diff);
  }
  float best = hmax8(vbest);
  for (; i < hi; ++i) {
    const float ns = c.new_s2[i];
    const float zi = (fabs_(ns) + ns) * c.inv_gamma;
    best = fmax_(best, fabs_(zi - c.z[i]));
    c.z[i] = zi;
  }
  return best;
}

}  // namespace

const MmsimSimdKernels kMmsimSimdAvx2 = {primal,   dual_rhs,   dual_z,
                                         primal_f, dual_rhs_f, dual_z_f};

}  // namespace mch::lcp::kernels

#endif  // MCH_SIMD_X86
