#include "lcp/mmsim.h"

#include <algorithm>
#include <cmath>

#include "linalg/power_iteration.h"
#include "runtime/parallel.h"
#include "util/check.h"
#include "util/timer.h"

namespace mch::lcp {

namespace {
using runtime::kGrainElementwise;
using runtime::parallel_for;
}  // namespace

using linalg::BlockDiagMatrix;
using linalg::CsrMatrix;
using linalg::DenseMatrix;
using linalg::Tridiagonal;

Tridiagonal schur_tridiagonal(const BlockDiagMatrix& k, const CsrMatrix& b,
                              const std::vector<bool>* coupling_breaks) {
  const std::size_t m = b.rows();
  MCH_CHECK(coupling_breaks == nullptr || coupling_breaks->size() == m);
  Tridiagonal d(m);

  // Entry (r, r') of B K⁻¹ Bᵀ = Σ_{i,j} B[r,i] · K⁻¹[i,j] · B[r',j].
  // B has at most two nonzeros per row, so each entry needs at most four
  // K⁻¹ lookups; K⁻¹ is block diagonal so each lookup is O(log #blocks).
  const auto entry = [&](std::size_t r, std::size_t rp) {
    double sum = 0.0;
    for (std::size_t ka = b.row_ptr()[r]; ka < b.row_ptr()[r + 1]; ++ka)
      for (std::size_t kb = b.row_ptr()[rp]; kb < b.row_ptr()[rp + 1]; ++kb)
        sum += b.values()[ka] * b.values()[kb] *
               k.inverse_entry(b.col_idx()[ka], b.col_idx()[kb]);
    return sum;
  };

  for (std::size_t r = 0; r < m; ++r) {
    d.diag(r) = entry(r, r);
    if (r + 1 < m && !(coupling_breaks && (*coupling_breaks)[r + 1])) {
      d.upper(r) = entry(r, r + 1);
      d.lower(r) = entry(r + 1, r);
    }
  }
  return d;
}

MmsimSolver::MmsimSolver(const StructuredQp& qp, const MmsimOptions& options,
                         const std::vector<bool>* schur_coupling_breaks)
    : qp_(qp), opts_(options) {
  MCH_CHECK_MSG(opts_.beta > 0.0 && opts_.beta < 2.0,
                "beta must be in (0, 2)");
  MCH_CHECK(opts_.theta > 0.0 && opts_.gamma > 0.0);

  Timer timer;
  // (1,1) block of M + I: K/β* + I, block diagonal; store with inverses.
  for (std::size_t blk = 0; blk < qp_.K.block_count(); ++blk) {
    DenseMatrix shifted = qp_.K.block(blk);
    const std::size_t n = shifted.rows();
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        shifted(r, c) =
            qp_.K.block(blk)(r, c) / opts_.beta + (r == c ? 1.0 : 0.0);
    shifted_k_.add_block(shifted);
  }

  d_ = mch::lcp::schur_tridiagonal(qp_.K, qp_.B, schur_coupling_breaks);
  // (2,2) block of M + I: D/θ* + I.
  shifted_d_ = d_.scaled_plus_identity(1.0 / opts_.theta, 1.0);
  setup_seconds_ = timer.seconds();
}

double MmsimSolver::estimate_mu_max() const {
  const std::size_t m = qp_.num_constraints();
  if (m == 0) return 0.0;
  Vector t, u, v;
  const auto gamma_op = [&](const Vector& y, Vector& out) {
    qp_.B.multiply_transpose(y, t);  // t = Bᵀ y
    qp_.K.solve(t, u);               // u = K⁻¹ t
    qp_.B.multiply(u, v);            // v = B u
    MCH_CHECK_MSG(d_.solve(v, out), "D is singular");  // out = D⁻¹ v
  };
  return linalg::power_iteration(m, gamma_op).eigenvalue;
}

double MmsimSolver::suggest_theta() const {
  const double mu_max = estimate_mu_max();
  if (mu_max <= 0.0) return opts_.theta;
  const double bound = 2.0 * (2.0 - opts_.beta) / (opts_.beta * mu_max);
  // Theorem 2's bound assumes the exact Schur complement; with the
  // tridiagonal approximation D the empirically safe region is narrower
  // (bench/ablation_parameters maps it), so never suggest beyond the
  // paper's validated θ* = 0.5.
  return std::min(0.9 * bound, 0.5);
}

MmsimResult MmsimSolver::solve() const {
  return solve_from(Vector(qp_.lcp_size(), 0.0));
}

void MmsimResidualPartials::merge_max(const MmsimResidualPartials& other) {
  z_norm = std::max(z_norm, other.z_norm);
  w_norm = std::max(w_norm, other.w_norm);
  z_negativity = std::max(z_negativity, other.z_negativity);
  w_negativity = std::max(w_negativity, other.w_negativity);
  complementarity = std::max(complementarity, other.complementarity);
}

MmsimResidualPartials MmsimSolver::residual_partials(const Vector& z) const {
  Vector w;
  qp_.lcp_apply(z, w);
  MmsimResidualPartials partials;
  partials.z_norm = linalg::norm_inf(z);
  partials.w_norm = linalg::norm_inf(w);
  for (std::size_t i = 0; i < z.size(); ++i) {
    partials.z_negativity = std::max(partials.z_negativity, -z[i]);
    partials.w_negativity = std::max(partials.w_negativity, -w[i]);
    partials.complementarity =
        std::max(partials.complementarity, std::abs(z[i] * w[i]));
  }
  return partials;
}

bool MmsimSolver::residual_ok(const MmsimResidualPartials& partials,
                              double tolerance) {
  const double scale_z = 1.0 + partials.z_norm;
  const double scale_w = 1.0 + partials.w_norm;
  return partials.z_negativity <= tolerance * scale_z &&
         partials.w_negativity <= tolerance * scale_w &&
         partials.complementarity <= tolerance * scale_z * scale_w;
}

bool MmsimSolver::scaled_residual_ok(const Vector& z) const {
  return residual_ok(residual_partials(z), opts_.residual_tolerance);
}

MmsimSolver::State MmsimSolver::make_state() const {
  return make_state(Vector(qp_.lcp_size(), 0.0));
}

MmsimSolver::State MmsimSolver::make_state(const Vector& s0) const {
  const std::size_t n = qp_.num_variables();
  const std::size_t m = qp_.num_constraints();
  MCH_CHECK(s0.size() == n + m);
  State state;
  state.s1.assign(s0.begin(), s0.begin() + static_cast<std::ptrdiff_t>(n));
  state.s2.assign(s0.begin() + static_cast<std::ptrdiff_t>(n), s0.end());
  state.z.assign(n + m, 0.0);
  state.z_prev.assign(n + m, 0.0);
  state.abs1.resize(n);
  state.abs2.resize(m);
  state.rhs1.resize(n);
  state.rhs2.resize(m);
  return state;
}

double MmsimSolver::step(State& state) const {
  const std::size_t n = qp_.num_variables();
  const std::size_t m = qp_.num_constraints();
  Vector& s1 = state.s1;
  Vector& s2 = state.s2;
  Vector& abs1 = state.abs1;
  Vector& abs2 = state.abs2;
  Vector& rhs1 = state.rhs1;
  Vector& rhs2 = state.rhs2;
  const double inv_beta_minus_1 = 1.0 / opts_.beta - 1.0;
  const double inv_theta = 1.0 / opts_.theta;

  state.z_prev = state.z;

  // All element-wise stages of the modulus update run on the runtime; the
  // matrix products parallelize internally. Each stage owns its output
  // elements, so the iterates are identical at every thread count.
  parallel_for(std::size_t{0}, n, kGrainElementwise,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i)
                   abs1[i] = std::abs(s1[i]);
               });
  parallel_for(std::size_t{0}, m, kGrainElementwise,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i)
                   abs2[i] = std::abs(s2[i]);
               });

  // rhs1 = (1/β−1)·K s1 + Bᵀ s2 + (|s1| − K|s1|) + Bᵀ|s2| − γ p.
  rhs1.assign(n, 0.0);
  qp_.K.multiply_add(inv_beta_minus_1, s1, rhs1);
  qp_.B.multiply_transpose_add(1.0, s2, rhs1);
  parallel_for(std::size_t{0}, n, kGrainElementwise,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) rhs1[i] += abs1[i];
               });
  qp_.K.multiply_add(-1.0, abs1, rhs1);
  qp_.B.multiply_transpose_add(1.0, abs2, rhs1);
  parallel_for(std::size_t{0}, n, kGrainElementwise,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i)
                   rhs1[i] -= opts_.gamma * qp_.p[i];
               });

  // Forward solve of the block lower triangular system:
  //   (K/β + I)·s1' = rhs1             (block-diagonal solve)
  shifted_k_.solve(rhs1, state.new_s1);

  //   rhs2 = (D/θ)·s2 − B|s1| + |s2| + γ b − B·s1_used, where s1_used is
  //   the fresh iterate under the paper's Gauss–Seidel splitting (the B
  //   block of M) or the previous one under the Jacobi ablation.
  if (m > 0) {
    d_.multiply(s2, rhs2);
    parallel_for(std::size_t{0}, m, kGrainElementwise,
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i)
                     rhs2[i] = inv_theta * rhs2[i] + abs2[i] +
                               opts_.gamma * qp_.b[i];
                 });
    qp_.B.multiply_add(-1.0, abs1, rhs2);
    qp_.B.multiply_add(
        -1.0,
        opts_.splitting == MmsimSplitting::kGaussSeidel ? state.new_s1 : s1,
        rhs2);
    //   (D/θ + I)·s2' = rhs2           (Thomas solve)
    MCH_CHECK_MSG(shifted_d_.solve(rhs2, state.new_s2), "D/θ + I singular");
  } else {
    state.new_s2.clear();
  }

  s1.swap(state.new_s1);
  s2.swap(state.new_s2);

  // z = (|s| + s)/γ  (so z = max(s, 0)·2/γ).
  Vector& z = state.z;
  parallel_for(std::size_t{0}, n, kGrainElementwise,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i)
                   z[i] = (std::abs(s1[i]) + s1[i]) / opts_.gamma;
               });
  parallel_for(std::size_t{0}, m, kGrainElementwise,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i)
                   z[n + i] = (std::abs(s2[i]) + s2[i]) / opts_.gamma;
               });

  ++state.iterations;
  return linalg::diff_norm_inf(z, state.z_prev);
}

MmsimResult MmsimSolver::solve_from(const Vector& s0) const {
  const std::size_t n = qp_.num_variables();

  Timer timer;
  MmsimResult result;
  result.setup_seconds = setup_seconds_;

  State state = make_state(s0);
  for (std::size_t k = 0; k < opts_.max_iterations; ++k) {
    result.final_delta = step(state);
    result.iterations = k + 1;
    if (opts_.trace_stride > 0 && k % opts_.trace_stride == 0)
      result.trace.emplace_back(k + 1, result.final_delta);
    if (k > 0 && result.final_delta < opts_.tolerance) {
      if (!opts_.residual_check || scaled_residual_ok(state.z)) {
        result.converged = true;
        break;
      }
    }
  }

  result.z = std::move(state.z);
  result.x.assign(result.z.begin(),
                  result.z.begin() + static_cast<std::ptrdiff_t>(n));
  result.dual.assign(result.z.begin() + static_cast<std::ptrdiff_t>(n),
                     result.z.end());
  result.solve_seconds = timer.seconds();
  return result;
}

}  // namespace mch::lcp
