// Production-scale memory/time sweep (ROADMAP open item 3).
//
// Records cells vs. build/partition/solve time vs. peak RSS for the
// 1M–10M-cell scale families of gen::generate_scale_design, comparing the
// streamed memory spine (streaming CSR assembly with the union-find folded
// in, component-at-a-time tiered scheduling) against the pre-refactor
// baseline layout (monolithic COO staging, separate partition walk, all
// component problems materialized up front).
//
// Peak RSS (getrusage ru_maxrss) is monotone over a process's lifetime, so
// one process can measure at most one data point: the driver re-execs
// itself once per point (`--point <variant> <cells> <engine>`) and each
// child prints a single table row. The child mode doubles as the
// `ulimit -v` bigmem smoke in tools/verify.sh.
//
// Knobs: MCH_SCALE_POINTS=small|full (default full) picks the sweep size;
// MCH_BENCH_SEED as everywhere else.
#include <array>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_common.h"
#include "db/legality.h"
#include "gen/generator.h"
#include "legal/mmsim_legalizer.h"
#include "legal/model.h"
#include "legal/partition.h"
#include "legal/row_assign.h"
#include "legal/tetris_alloc.h"
#include "util/rss.h"
#include "util/timer.h"

namespace {

using namespace mch;

gen::ScaleVariant parse_variant(const std::string& name) {
  if (name == "baseline") return gen::ScaleVariant::kBaseline;
  if (name == "obstacle-heavy") return gen::ScaleVariant::kObstacleHeavy;
  if (name == "high-utilization") return gen::ScaleVariant::kHighUtilization;
  std::fprintf(stderr, "unknown scale variant '%s'\n", name.c_str());
  std::exit(2);
}

/// One measured point, executed in a child process so ru_maxrss reflects
/// this point alone. Prints exactly one row to stdout.
int run_point(const std::string& variant_name, std::size_t cells,
              const std::string& engine) {
  const bool streamed = engine == "streamed";
  if (!streamed && engine != "legacy") {
    std::fprintf(stderr, "unknown engine '%s' (streamed|legacy)\n",
                 engine.c_str());
    return 2;
  }
  const gen::ScaleVariant variant = parse_variant(variant_name);
  db::Design design =
      gen::generate_scale_design(variant, cells, bench::bench_seed());
  const legal::RowAssignment base_rows = legal::assign_rows(design);

  // Model build + partition. The streamed engine assembles B directly into
  // CSR with the union-find riding on the constraint stream, so its
  // partition cost is folded into the build; the legacy engine stages the
  // whole design through COO and then walks the finished model again.
  Timer build_timer;
  legal::LegalizationModel model;
  legal::ConstraintPartition partition;
  double build_seconds = 0.0;
  double partition_seconds = 0.0;
  if (streamed) {
    model = legal::build_model(design, base_rows, {}, &partition);
    build_seconds = build_timer.seconds();
  } else {
    model = legal::build_model_monolithic(design, base_rows);
    build_seconds = build_timer.seconds();
    Timer partition_timer;
    partition = legal::partition_model(model);
    partition_seconds = partition_timer.seconds();
  }

  // Tiered per-component solve: component-at-a-time for the streamed
  // engine, the legacy extract-everything layout otherwise.
  legal::MmsimLegalizerOptions options;
  options.partition = legal::PartitionMode::kTiered;
  options.component_at_a_time = streamed;
  options.prebuilt_model = &model;
  options.prebuilt_partition = &partition;
  Timer solve_timer;
  const legal::MmsimLegalizerStats stats =
      legal::mmsim_legalize_continuous(design, base_rows, options);
  const double solve_seconds = solve_timer.seconds();

  Timer allocate_timer;
  const legal::TetrisStats allocation = legal::tetris_allocate(design);
  legal::assign_orientations(design);
  const double allocate_seconds = allocate_timer.seconds();

  const db::LegalityReport report = db::check_legality(design);
  const bool legal = report.legal() && allocation.unplaced_cells == 0;

  std::printf("%-16s %9zu %-8s %9.2f %9.2f %9.2f %9.2f %9zu %5s %11.1f\n",
              variant_name.c_str(), design.num_cells(), engine.c_str(),
              build_seconds, partition_seconds, solve_seconds,
              allocate_seconds, stats.num_components, legal ? "yes" : "NO",
              util::peak_rss_mb());
  std::fflush(stdout);
  return legal && stats.converged ? 0 : 1;
}

struct Point {
  const char* variant;
  std::size_t cells;
  const char* engine;
};

int run_driver(const char* self) {
  bench::print_bench_banner("scaling_memory");
  std::printf(
      "# One child process per row (peak RSS is per-process-monotone):\n"
      "#   %s --point <variant> <cells> <engine>\n"
      "# build   = model assembly (streamed: CSR + union-find in one pass)\n"
      "# part    = separate partition walk (legacy engine only)\n"
      "# legacy  = pre-refactor layout: COO staging + extract-all solve\n"
      "%-16s %9s %-8s %9s %9s %9s %9s %9s %5s %11s\n",
      self, "variant", "cells", "engine", "build_s", "part_s", "solve_s",
      "alloc_s", "comps", "legal", "peak_rss_mb");
  // Children inherit this process's stdout and flush their own rows; when
  // stdout is a file (the snapshot) the banner would otherwise sit in the
  // parent's full buffer until exit and land *after* every row.
  std::fflush(stdout);

  const bool small = [] {
    const char* env = std::getenv("MCH_SCALE_POINTS");
    return env != nullptr && std::strcmp(env, "small") == 0;
  }();

  // The legacy engine is measured only up to 1M cells — it is the baseline
  // the acceptance bar compares against; running its COO staging at 10M is
  // exactly the peak-RSS wall this refactor removes.
  const std::array<Point, 9> full_points = {{
      {"baseline", 1000000, "legacy"},
      {"baseline", 1000000, "streamed"},
      {"baseline", 2000000, "streamed"},
      {"baseline", 5000000, "streamed"},
      {"baseline", 10000000, "streamed"},
      {"obstacle-heavy", 1000000, "legacy"},
      {"obstacle-heavy", 1000000, "streamed"},
      {"high-utilization", 1000000, "legacy"},
      {"high-utilization", 1000000, "streamed"},
  }};
  const std::array<Point, 4> small_points = {{
      {"baseline", 100000, "legacy"},
      {"baseline", 100000, "streamed"},
      {"obstacle-heavy", 100000, "streamed"},
      {"high-utilization", 100000, "streamed"},
  }};

  const Point* points = small ? small_points.data() : full_points.data();
  const std::size_t count = small ? small_points.size() : full_points.size();

  int worst = 0;
  bench::JsonSnapshot json("scaling_memory");
  for (std::size_t i = 0; i < count; ++i) {
    std::string command = std::string(self) + " --point " + points[i].variant +
                          " " + std::to_string(points[i].cells) + " " +
                          points[i].engine;
    Timer point_timer;
    const int rc = std::system(command.c_str());
    // Whole-child wall clock (generate + build + solve + allocate +
    // check); the per-phase seconds and the per-point peak RSS are in the
    // child's text row — ru_maxrss is per-process, so the parent cannot
    // report it here.
    json.add(std::string(points[i].variant) + "/" + points[i].engine,
             points[i].cells, point_timer.seconds());
    if (rc != 0) {
      std::printf("# point failed (rc %d): %s\n", rc, command.c_str());
      std::fflush(stdout);
      worst = 1;
    }
  }
  json.write();
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--point") == 0) {
    if (argc != 5) {
      std::fprintf(stderr,
                   "usage: %s --point <variant> <cells> <engine>\n", argv[0]);
      return 2;
    }
    return run_point(argv[2],
                     static_cast<std::size_t>(std::strtoull(argv[3], nullptr,
                                                            10)),
                     argv[4]);
  }
  mch::bench::bench_threads(argc, argv);
  return run_driver(argv[0]);
}
