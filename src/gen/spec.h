// Benchmark suite specification.
//
// The paper evaluates on 20 benchmarks derived from the ISPD-2015
// detailed-routing-driven placement contest, modified by the authors of
// [Chow et al., DAC'16]: fence regions dropped, and 10% of cells doubled in
// height / halved in width. The binaries and converted benchmarks are not
// public, so we regenerate synthetic equivalents that match the *published
// characteristics* of each benchmark (Table 1): the number of single- and
// double-height cells and the design density. See DESIGN.md §4.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mch::gen {

struct BenchmarkSpec {
  std::string name;
  std::size_t num_single_cells = 0;  ///< "#S. Cell" of Table 1
  std::size_t num_double_cells = 0;  ///< "#D. Cell" of Table 1
  double density = 0.0;              ///< "Density" of Table 1
};

/// The 20 benchmarks of Table 1 with their published characteristics.
const std::vector<BenchmarkSpec>& ispd2015_mch_suite();

/// Looks up a suite entry by name; throws CheckError when absent.
const BenchmarkSpec& find_spec(const std::string& name);

}  // namespace mch::gen
