#include "gp/quadratic_placer.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "baselines/tetris.h"
#include "eval/metrics.h"
#include "linalg/cg.h"
#include "linalg/sparse.h"
#include "util/check.h"
#include "util/timer.h"

namespace mch::gp {

namespace {

using linalg::Vector;

/// Connectivity of the movable cells: a sparse symmetric Laplacian over
/// movable indices plus, per movable cell, the accumulated weight and
/// weighted target from edges to fixed cells.
struct QuadraticSystem {
  linalg::CsrMatrix laplacian;          ///< movable-movable part
  Vector fixed_weight;                  ///< Σ w over edges to fixed cells
  Vector fixed_moment_x;                ///< Σ w · x_fixed-center
  Vector fixed_moment_y;
  Vector degree;                        ///< Laplacian diagonal
  std::vector<std::size_t> movable;     ///< movable cell ids
  std::vector<std::size_t> index_of;    ///< cell id → movable index (or npos)
};

constexpr std::size_t kNotMovable = static_cast<std::size_t>(-1);

QuadraticSystem build_system(const db::Design& design,
                             const GlobalPlacementOptions& options) {
  QuadraticSystem sys;
  sys.index_of.assign(design.num_cells(), kNotMovable);
  for (std::size_t c = 0; c < design.num_cells(); ++c) {
    if (design.cells()[c].fixed) continue;
    sys.index_of[c] = sys.movable.size();
    sys.movable.push_back(c);
  }
  const std::size_t n = sys.movable.size();
  MCH_CHECK_MSG(n > 0, "no movable cells to place");

  linalg::CooMatrix coo(n, n);
  sys.fixed_weight.assign(n, 0.0);
  sys.fixed_moment_x.assign(n, 0.0);
  sys.fixed_moment_y.assign(n, 0.0);

  const auto center_x = [&](std::size_t cell) {
    return design.cells()[cell].x + design.cells()[cell].width / 2.0;
  };
  const auto center_y = [&](std::size_t cell) {
    const db::Cell& c = design.cells()[cell];
    return c.y + static_cast<double>(c.height_rows) *
                     design.chip().row_height / 2.0;
  };

  const auto add_edge = [&](std::size_t a, std::size_t b, double weight) {
    const std::size_t ia = sys.index_of[a];
    const std::size_t ib = sys.index_of[b];
    if (ia == kNotMovable && ib == kNotMovable) return;
    if (ia != kNotMovable && ib != kNotMovable) {
      coo.add(ia, ia, weight);
      coo.add(ib, ib, weight);
      coo.add(ia, ib, -weight);
      coo.add(ib, ia, -weight);
    } else {
      const std::size_t im = ia != kNotMovable ? ia : ib;
      const std::size_t fixed = ia != kNotMovable ? b : a;
      sys.fixed_weight[im] += weight;
      sys.fixed_moment_x[im] += weight * center_x(fixed);
      sys.fixed_moment_y[im] += weight * center_y(fixed);
    }
  };

  for (const db::NetView& net : design.nets()) {
    const std::size_t p = net.pins.size();
    if (p < 2) continue;
    if (p <= options.max_clique_pins) {
      // Clique model with the standard 1/(p−1) edge weight.
      const double w = 1.0 / static_cast<double>(p - 1);
      for (std::size_t i = 0; i < p; ++i)
        for (std::size_t j = i + 1; j < p; ++j) {
          if (net.pins[i].cell == net.pins[j].cell) continue;
          add_edge(net.pins[i].cell, net.pins[j].cell, w);
        }
    } else {
      // Star model: every pin to the first pin's cell (a cheap hub choice;
      // large nets are rare in our inputs).
      const double w = 1.0 / static_cast<double>(p - 1);
      for (std::size_t i = 1; i < p; ++i) {
        if (net.pins[i].cell == net.pins[0].cell) continue;
        add_edge(net.pins[0].cell, net.pins[i].cell, w);
      }
    }
  }

  sys.laplacian = linalg::CsrMatrix::from_coo(coo);
  sys.degree.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    sys.degree[i] = sys.laplacian.at(i, i) + sys.fixed_weight[i];
  return sys;
}

/// Solves (L + W_fixed + αI) v = fixed_moment + α·anchor for one axis.
void solve_axis(const QuadraticSystem& sys, double alpha,
                const Vector& anchors, const Vector& fixed_moment,
                const GlobalPlacementOptions& options, Vector& v) {
  const std::size_t n = sys.movable.size();
  Vector rhs(n), diag(n);
  for (std::size_t i = 0; i < n; ++i) {
    rhs[i] = fixed_moment[i] + alpha * anchors[i];
    // Keep the system nonsingular even for disconnected, anchor-free
    // components (alpha = 0 on the first round): a tiny ridge toward the
    // current value.
    diag[i] = std::max(sys.degree[i] + alpha, 1e-9);
  }
  const auto apply = [&](const Vector& x, Vector& y) {
    sys.laplacian.multiply(x, y);
    for (std::size_t i = 0; i < n; ++i)
      y[i] += (sys.fixed_weight[i] + alpha + 1e-9) * x[i];
  };
  for (std::size_t i = 0; i < n; ++i) rhs[i] += 1e-9 * v[i];

  linalg::CgOptions cg;
  cg.max_iterations = options.cg_max_iterations;
  cg.tolerance = options.cg_tolerance;
  linalg::conjugate_gradient(apply, diag, rhs, v, cg);
}

}  // namespace

GlobalPlacementStats place(db::Design& design,
                           const GlobalPlacementOptions& options) {
  Timer timer;
  GlobalPlacementStats stats;
  MCH_CHECK_MSG(design.num_nets() > 0,
                "global placement needs a netlist");

  const QuadraticSystem sys = build_system(design, options);
  const std::size_t n = sys.movable.size();
  const db::Chip& chip = design.chip();

  // State: movable cell centers.
  Vector vx(n), vy(n);
  for (std::size_t i = 0; i < n; ++i) {
    const db::Cell& cell = design.cells()[sys.movable[i]];
    vx[i] = chip.width() / 2.0 + 1e-3 * static_cast<double>(i % 101);
    vy[i] = chip.height() / 2.0 + 1e-3 * static_cast<double>(i % 97);
    (void)cell;
  }

  const auto write_back = [&](const Vector& x, const Vector& y) {
    for (std::size_t i = 0; i < n; ++i) {
      db::Cell& cell = design.cells()[sys.movable[i]];
      const double height =
          static_cast<double>(cell.height_rows) * chip.row_height;
      cell.x = std::clamp(x[i] - cell.width / 2.0, 0.0,
                          chip.width() - cell.width);
      cell.y = std::clamp(y[i] - height / 2.0, 0.0, chip.height() - height);
      cell.gp_x = cell.x;
      cell.gp_y = cell.y;
    }
  };

  Vector anchor_x = vx, anchor_y = vy;
  for (std::size_t iter = 0; iter < options.iterations; ++iter) {
    // Lower bound: quadratic wirelength + anchor springs.
    const double alpha =
        options.anchor_weight_step * static_cast<double>(iter);
    solve_axis(sys, alpha, anchor_x, sys.fixed_moment_x, options, vx);
    solve_axis(sys, alpha, anchor_y, sys.fixed_moment_y, options, vy);
    write_back(vx, vy);
    if (iter == 0) stats.initial_hpwl = eval::hpwl(design);

    // Upper bound: rough spreading supplies the next anchors.
    db::Design spread = design;
    baselines::tetris_legalize(spread);
    stats.spread_hpwl = eval::hpwl(spread);
    for (std::size_t i = 0; i < n; ++i) {
      const db::Cell& cell = spread.cells()[sys.movable[i]];
      anchor_x[i] = cell.x + cell.width / 2.0;
      anchor_y[i] = cell.y + static_cast<double>(cell.height_rows) *
                                 chip.row_height / 2.0;
    }
    stats.iterations = iter + 1;
  }

  write_back(vx, vy);
  stats.final_hpwl = eval::hpwl(design);
  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace mch::gp
