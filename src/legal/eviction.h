// Ownership-aware occupancy with bounded eviction.
//
// Wraps OccupancyGrid with a per-row map of which cell owns which span, so
// that when the nearest-free-position search comes up empty — fragmented
// free space versus a multi-row cell on a near-capacity chip — the caller
// can free a rail-correct span by relocating the single-height cells inside
// it. Used by the final Tetris-like allocation (paper §4) and by the Tetris
// baseline; eviction triggers only in the regime the paper's benchmarks
// never reach (density well above 0.91), but a production legalizer must
// not fail there.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "db/design.h"
#include "legal/occupancy.h"

namespace mch::legal {

class OwnedOccupancy {
 public:
  explicit OwnedOccupancy(const db::Chip& chip)
      : grid_(chip), owners_(chip.num_rows) {}

  const OccupancyGrid& grid() const { return grid_; }
  const db::Chip& chip() const { return grid_.chip(); }

  /// Occupies the span for the cell and writes its position into the
  /// design. Requires the span free.
  void place(db::Design& design, std::size_t id, std::size_t base_row,
             SiteIndex site);

  /// Releases the cell's current (site/row-aligned) span.
  void remove(db::Design& design, std::size_t id);

  /// Registers a fixed cell (obstacle) at its current position without
  /// moving it: occupies every site/row its outline touches (rounded
  /// outward to whole sites/rows). Fixed cells are never eviction victims.
  void place_fixed(const db::Design& design, std::size_t id);

  bool is_free(std::size_t base_row, std::size_t height, SiteIndex site,
               SiteIndex width_sites) const {
    return grid_.is_free(base_row, height, site, width_sites);
  }

  PlacementCandidate find_nearest(const db::Cell& cell, double target_x,
                                  double target_y,
                                  std::size_t max_row_distance = 0) const {
    return grid_.find_nearest(cell, target_x, target_y, max_row_distance);
  }

  SiteIndex width_sites(const db::Cell& cell) const {
    return grid_.width_sites(cell);
  }

  /// Ids of the cells overlapping [site, site+width) on the row span.
  std::vector<std::size_t> blockers(std::size_t base_row, std::size_t height,
                                    SiteIndex site, SiteIndex width) const;

  /// Right edge (exclusive) of the rightmost occupied span in the row, or
  /// 0 when the row is empty. Lets frontier-based callers re-establish
  /// their invariant after an eviction reshuffles cells.
  SiteIndex max_end(std::size_t row) const {
    const auto& owners = owners_[row];
    return owners.empty() ? 0 : owners.rbegin()->second.first;
  }

  /// Places the cell at the nearest free position; when none exists, frees
  /// a rail-correct span near the target by evicting single-height blockers
  /// and re-placing them at their nearest free positions. Returns false
  /// only when every candidate span is blocked by another multi-row cell or
  /// a relocated victim cannot be re-seated.
  bool place_with_eviction(db::Design& design, std::size_t id,
                           double target_x, double target_y);

 private:
  OccupancyGrid grid_;
  /// Per row: interval start → (end, cell id).
  std::vector<std::map<SiteIndex, std::pair<SiteIndex, std::size_t>>> owners_;
};

}  // namespace mch::legal
