// Dense vector kernels.
//
// Vectors are std::vector<double> over a 64-byte-aligned allocator
// (util/aligned.h): the problem sizes here (millions of entries) never
// justify an expression-template layer, plain loops let the compiler
// vectorize, and cache-line alignment lets the explicit SIMD kernels
// (linalg/simd_kernels.h) issue full-width loads from array bases. All
// functions check size agreement.
//
// Every kernel runs on the global runtime (src/runtime/) when it is
// configured with more than one thread. Reductions (dot, the norms) use the
// fixed-chunk deterministic reduce, so their results are bitwise-identical
// at every thread count.
#pragma once

#include <cstddef>
#include <vector>

#include "util/aligned.h"

namespace mch::linalg {

/// 64-byte-aligned std::vector; linalg arrays that feed SIMD kernels
/// (solver workspaces, CSR values, gather tables) use this layout.
template <typename T>
using AlignedVector = std::vector<T, util::AlignedAllocator<T, 64>>;

using Vector = AlignedVector<double>;

/// Returns the dot product aᵀb. Requires a.size() == b.size().
double dot(const Vector& a, const Vector& b);

/// y += alpha * x. Requires x.size() == y.size().
void axpy(double alpha, const Vector& x, Vector& y);

/// Euclidean norm ‖a‖₂.
double norm2(const Vector& a);

/// Max norm ‖a‖∞ (0 for an empty vector).
double norm_inf(const Vector& a);

/// ‖a − b‖∞. Requires a.size() == b.size().
double diff_norm_inf(const Vector& a, const Vector& b);

/// a *= alpha.
void scale(double alpha, Vector& a);

/// out[i] = |a[i]|.
void abs_into(const Vector& a, Vector& out);

/// out[i] = max(a[i], 0).
void positive_part(const Vector& a, Vector& out);

}  // namespace mch::linalg
