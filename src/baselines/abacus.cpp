#include "baselines/abacus.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "legal/row_assign.h"
#include "util/check.h"
#include "util/timer.h"

namespace mch::baselines {

namespace {

struct Cluster {
  double x = 0.0;   ///< current (clamped) optimal position
  double w = 0.0;   ///< total width
  double q = 0.0;   ///< Σ wt_i (target_i − offset_i)
  double wt = 0.0;  ///< Σ wt_i
  std::size_t first = 0;
  std::size_t last = 0;
};

double clamp_position(double x, double width, double min_x, double max_x) {
  const double hi = max_x - width;
  if (hi < min_x) return min_x;  // infeasible row; caller detects overflow
  return std::clamp(x, min_x, hi);
}

}  // namespace

std::vector<double> place_row(const std::vector<PlaceRowCell>& cells,
                              double min_x, double max_x) {
  std::vector<Cluster> clusters;
  clusters.reserve(cells.size());

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const PlaceRowCell& cell = cells[i];
    MCH_CHECK(cell.width > 0.0 && cell.weight > 0.0);
    Cluster c;
    c.w = cell.width;
    c.wt = cell.weight;
    c.q = cell.weight * cell.target;
    c.first = c.last = i;
    c.x = clamp_position(c.q / c.wt, c.w, min_x, max_x);
    clusters.push_back(c);

    // Collapse while the new cluster overlaps its predecessor.
    while (clusters.size() >= 2) {
      Cluster& prev = clusters[clusters.size() - 2];
      Cluster& curr = clusters.back();
      if (prev.x + prev.w <= curr.x) break;
      // Merge curr into prev: member offsets shift by prev.w.
      prev.q += curr.q - curr.wt * prev.w;
      prev.wt += curr.wt;
      prev.w += curr.w;
      prev.last = curr.last;
      clusters.pop_back();
      Cluster& merged = clusters.back();
      merged.x = clamp_position(merged.q / merged.wt, merged.w, min_x, max_x);
    }
  }

  std::vector<double> x(cells.size(), 0.0);
  for (const Cluster& c : clusters) {
    double offset = 0.0;
    for (std::size_t i = c.first; i <= c.last; ++i) {
      x[i] = c.x + offset;
      offset += cells[i].width;
    }
  }
  return x;
}

double place_row_objective(const std::vector<PlaceRowCell>& cells,
                           const std::vector<double>& x) {
  MCH_CHECK(cells.size() == x.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const double d = x[i] - cells[i].target;
    sum += cells[i].weight * d * d;
  }
  return sum;
}

namespace {

/// Mutable per-row state of the full Abacus legalizer.
struct AbacusRow {
  std::vector<Cluster> clusters;
  std::vector<std::size_t> cells;   ///< design cell ids, left to right
  std::vector<double> widths;       ///< matching widths
  double used_width = 0.0;
};

/// Simulates appending a cell to the row and returns the cell's final x, or
/// infinity when the row cannot accommodate it.
double trial_insert(const AbacusRow& row, double target, double width,
                    double min_x, double max_x) {
  if (max_x - min_x < row.used_width + width)
    return std::numeric_limits<double>::infinity();

  Cluster virt;
  virt.w = width;
  virt.wt = 1.0;
  virt.q = target;
  virt.x = clamp_position(target, width, min_x, max_x);

  std::size_t k = row.clusters.size();
  while (k > 0) {
    const Cluster& prev = row.clusters[k - 1];
    if (prev.x + prev.w <= virt.x) break;
    virt.q = prev.q + virt.q - virt.wt * prev.w;
    virt.wt += prev.wt;
    virt.w += prev.w;
    virt.x = clamp_position(virt.q / virt.wt, virt.w, min_x, max_x);
    --k;
  }
  // The inserted cell is the rightmost member of the merged cluster.
  return virt.x + virt.w - width;
}

/// Actually appends the cell and collapses clusters.
void commit_insert(AbacusRow& row, std::size_t cell_id, double target,
                   double width, double min_x, double max_x) {
  row.cells.push_back(cell_id);
  row.widths.push_back(width);
  row.used_width += width;

  Cluster c;
  c.w = width;
  c.wt = 1.0;
  c.q = target;
  c.first = c.last = row.cells.size() - 1;
  c.x = clamp_position(target, width, min_x, max_x);
  row.clusters.push_back(c);
  while (row.clusters.size() >= 2) {
    Cluster& prev = row.clusters[row.clusters.size() - 2];
    Cluster& curr = row.clusters.back();
    if (prev.x + prev.w <= curr.x) break;
    prev.q += curr.q - curr.wt * prev.w;
    prev.wt += curr.wt;
    prev.w += curr.w;
    prev.last = curr.last;
    row.clusters.pop_back();
    Cluster& merged = row.clusters.back();
    merged.x = clamp_position(merged.q / merged.wt, merged.w, min_x, max_x);
  }
}

}  // namespace

AbacusStats abacus_legalize(db::Design& design, const AbacusOptions& options) {
  Timer timer;
  AbacusStats stats;
  const db::Chip& chip = design.chip();
  const double max_x = options.clamp_right_boundary
                           ? chip.width()
                           : std::numeric_limits<double>::infinity();

  for (const db::Cell& cell : design.cells()) {
    MCH_CHECK_MSG(cell.height_rows == 1,
                  "abacus_legalize handles single-row-height designs only");
    MCH_CHECK_MSG(!cell.fixed,
                  "abacus_legalize does not support fixed cells");
  }

  std::vector<AbacusRow> rows(chip.num_rows);
  std::vector<std::size_t> order(design.num_cells());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double xa = design.cells()[a].gp_x;
    const double xb = design.cells()[b].gp_x;
    if (xa != xb) return xa < xb;
    return a < b;
  });

  for (const std::size_t id : order) {
    db::Cell& cell = design.cells()[id];
    const auto anchor = design.nearest_row(cell.gp_y, 1);

    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t best_row = chip.num_rows;
    for (std::size_t dist = 0; dist < chip.num_rows; ++dist) {
      bool any = false;
      for (const int sign : {+1, -1}) {
        if (dist == 0 && sign < 0) continue;
        const auto r = static_cast<std::ptrdiff_t>(anchor) +
                       sign * static_cast<std::ptrdiff_t>(dist);
        if (r < 0 || r >= static_cast<std::ptrdiff_t>(chip.num_rows))
          continue;
        any = true;
        const auto row_idx = static_cast<std::size_t>(r);
        const double dy = chip.row_y(row_idx) - cell.gp_y;
        if (dist > options.min_rows_each_side && dy * dy >= best_cost)
          continue;
        const double x = trial_insert(rows[row_idx], cell.gp_x, cell.width,
                                      0.0, max_x);
        if (!std::isfinite(x)) continue;
        const double dx = x - cell.gp_x;
        const double cost = dx * dx + dy * dy;
        if (cost < best_cost) {
          best_cost = cost;
          best_row = row_idx;
        }
      }
      if (!any) break;
      const double ring_dy =
          static_cast<double>(dist) * chip.row_height -
          std::abs(cell.gp_y - chip.row_y(anchor));
      if (best_row != chip.num_rows && dist > options.min_rows_each_side &&
          ring_dy > 0.0 && ring_dy * ring_dy > best_cost)
        break;
    }
    if (best_row == chip.num_rows) {
      ++stats.failed_cells;
      continue;
    }
    commit_insert(rows[best_row], id, cell.gp_x, cell.width, 0.0, max_x);
    cell.y = chip.row_y(best_row);
  }

  // Write back final positions from the cluster chains.
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const AbacusRow& row = rows[r];
    for (const Cluster& c : row.clusters) {
      double offset = 0.0;
      for (std::size_t i = c.first; i <= c.last; ++i) {
        design.cells()[row.cells[i]].x = c.x + offset;
        offset += row.widths[i];
      }
    }
  }

  stats.seconds = timer.seconds();
  return stats;
}

AbacusStats placerow_legalize_fixed_rows(db::Design& design,
                                         bool clamp_right_boundary) {
  Timer timer;
  AbacusStats stats;
  const db::Chip& chip = design.chip();
  const double max_x = clamp_right_boundary
                           ? chip.width()
                           : std::numeric_limits<double>::infinity();

  for (const db::Cell& cell : design.cells()) {
    MCH_CHECK_MSG(cell.height_rows == 1,
                  "placerow_legalize_fixed_rows is single-height only");
    MCH_CHECK_MSG(!cell.fixed,
                  "placerow_legalize_fixed_rows does not support fixed cells");
  }

  const legal::RowAssignment assignment =
      legal::compute_row_assignment(design);

  // Group cells per row in GP x-order (ties by id) — the same ordering rule
  // as the MMSIM constraint builder, so the two arms solve the same
  // relaxation.
  std::vector<std::vector<std::size_t>> row_cells(chip.num_rows);
  for (std::size_t i = 0; i < design.num_cells(); ++i)
    row_cells[assignment[i]].push_back(i);

  for (std::size_t r = 0; r < chip.num_rows; ++r) {
    auto& ids = row_cells[r];
    std::sort(ids.begin(), ids.end(), [&](std::size_t a, std::size_t b) {
      const double xa = design.cells()[a].gp_x;
      const double xb = design.cells()[b].gp_x;
      if (xa != xb) return xa < xb;
      return a < b;
    });
    std::vector<PlaceRowCell> cells;
    cells.reserve(ids.size());
    for (const std::size_t id : ids)
      cells.push_back(
          {design.cells()[id].gp_x, design.cells()[id].width, 1.0});
    const std::vector<double> x = place_row(cells, 0.0, max_x);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      design.cells()[ids[i]].x = x[i];
      design.cells()[ids[i]].y = chip.row_y(r);
    }
  }

  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace mch::baselines
