#include "gen/generator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace mch::gen {

using db::Cell;
using db::Chip;
using db::Design;
using db::Net;
using db::Pin;
using db::RailType;

namespace {

/// Builds the cell population (widths/heights only; positions come later).
std::vector<Cell> make_cells(std::size_t num_single, std::size_t num_double,
                             const GeneratorOptions& opts, Rng& rng) {
  std::vector<Cell> cells;
  cells.reserve(num_single + num_double);

  std::size_t num_triple = 0;
  std::size_t num_quad = 0;
  if (opts.triple_fraction > 0.0 || opts.quad_fraction > 0.0) {
    num_triple = static_cast<std::size_t>(
        std::floor(opts.triple_fraction * static_cast<double>(num_single)));
    num_quad = static_cast<std::size_t>(
        std::floor(opts.quad_fraction * static_cast<double>(num_single)));
    MCH_CHECK(num_triple + num_quad <= num_single);
    num_single -= num_triple + num_quad;
  }

  const auto draw_width_sites = [&] {
    return static_cast<double>(
        rng.uniform_int(opts.min_width_sites, opts.max_width_sites));
  };

  const auto push = [&](std::uint16_t height_rows, double width_sites) {
    Cell cell;
    cell.width = width_sites * opts.site_width;
    cell.height_rows = height_rows;
    cells.push_back(cell);
  };

  for (std::size_t i = 0; i < num_single; ++i) push(1, draw_width_sites());
  // Paper rule for doubles: double the height, halve the width.
  for (std::size_t i = 0; i < num_double; ++i)
    push(2, std::max(1.0, std::round(draw_width_sites() / 2.0)));
  for (std::size_t i = 0; i < num_triple; ++i)
    push(3, std::max(1.0, std::round(draw_width_sites() / 3.0)));
  for (std::size_t i = 0; i < num_quad; ++i)
    push(4, std::max(1.0, std::round(draw_width_sites() / 4.0)));

  // Shuffle so heights are interleaved in placement order (Fisher–Yates).
  for (std::size_t i = cells.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(cells[i - 1], cells[j]);
  }
  return cells;
}

/// Sizes a near-square chip for the requested density. Macro area is added
/// on top so the movable cells still see `density` of the *free* area.
Chip size_chip(const std::vector<Cell>& cells, double density,
               const GeneratorOptions& opts) {
  MCH_CHECK(density > 0.0 && density <= 1.0);
  double total_area = 0.0;
  std::size_t max_height = 1;
  for (const Cell& cell : cells) {
    total_area +=
        cell.width * static_cast<double>(cell.height_rows) * opts.row_height;
    max_height = std::max<std::size_t>(max_height, cell.height_rows);
  }
  const double macro_area = static_cast<double>(opts.fixed_macros) *
                            opts.macro_width_sites * opts.site_width *
                            static_cast<double>(opts.macro_height_rows) *
                            opts.row_height;
  max_height = std::max(max_height, opts.fixed_macros > 0
                                        ? opts.macro_height_rows
                                        : std::size_t{1});
  const double chip_area = total_area / density + macro_area;
  const double side = std::sqrt(chip_area);

  Chip chip;
  chip.site_width = opts.site_width;
  chip.row_height = opts.row_height;
  chip.bottom_rail = RailType::kVss;
  chip.num_rows = std::max<std::size_t>(
      2 * max_height + 2,
      static_cast<std::size_t>(std::llround(side / opts.row_height)));
  // Keep the row count even so both rail parities offer equally many rows.
  if (chip.num_rows % 2 == 1) ++chip.num_rows;
  chip.num_sites = std::max<std::size_t>(
      16, static_cast<std::size_t>(std::ceil(
              chip_area / (static_cast<double>(chip.num_rows) *
                           opts.row_height * opts.site_width))));
  return chip;
}

/// Places the fixed macros at random non-overlapping row/site-aligned
/// positions. Returns the per-row blocked intervals, sorted by start.
std::vector<std::vector<std::pair<double, double>>> place_macros(
    Design& design, const GeneratorOptions& opts, Rng& rng) {
  const Chip& chip = design.chip();
  std::vector<std::vector<std::pair<double, double>>> blocked(chip.num_rows);
  if (opts.fixed_macros == 0) return blocked;

  const double mw = opts.macro_width_sites * chip.site_width;
  const std::size_t mh = opts.macro_height_rows;
  MCH_CHECK_MSG(mh < chip.num_rows && mw < chip.width(),
                "macros larger than the chip");
  const auto overlaps = [&](double x, std::size_t base) {
    for (std::size_t r = base; r < base + mh; ++r)
      for (const auto& [s0, e0] : blocked[r])
        if (x < e0 && s0 < x + mw) return true;
    return false;
  };
  for (std::size_t k = 0; k < opts.fixed_macros; ++k) {
    bool placed = false;
    for (int attempt = 0; attempt < 400 && !placed; ++attempt) {
      const auto base = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(chip.num_rows - mh)));
      const auto site = static_cast<std::int64_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(chip.num_sites) -
                 static_cast<std::int64_t>(opts.macro_width_sites)));
      const double x = static_cast<double>(site) * chip.site_width;
      if (overlaps(x, base)) continue;
      Cell macro;
      macro.width = mw;
      macro.height_rows = db::to_height_rows(mh);
      macro.fixed = true;
      macro.x = macro.gp_x = x;
      macro.y = macro.gp_y = chip.row_y(base);
      design.add_cell(macro);
      for (std::size_t r = base; r < base + mh; ++r)
        blocked[r].emplace_back(x, x + mw);
      placed = true;
    }
    MCH_CHECK_MSG(placed, "could not place macro " << k
                              << " without overlap; chip too full");
  }
  for (auto& row : blocked) std::sort(row.begin(), row.end());
  return blocked;
}

/// Legal-like Tetris packing sweep: place each cell at the cursor of the
/// best of `row_candidates` sampled rail-compatible base rows, inserting
/// exponential gaps sized to hit the target density.
void pack_base_placement(
    Design& design, const GeneratorOptions& opts,
    const std::vector<std::vector<std::pair<double, double>>>& blocked,
    Rng& rng) {
  const Chip& chip = design.chip();
  std::vector<double> cursor(chip.num_rows, 0.0);

  // Pushes x right until [x, x+w) clears every blocked interval in the
  // spanned rows (macros are few, so the loop settles immediately).
  const auto advance_past_blockages = [&](std::size_t base, std::size_t h,
                                          double x, double w) {
    bool moved = true;
    while (moved) {
      moved = false;
      for (std::size_t r = base; r < base + h; ++r)
        for (const auto& [s0, e0] : blocked[r])
          if (x < e0 && s0 < x + w) {
            x = e0;
            moved = true;
          }
    }
    return x;
  };

  // Mean horizontal slack per cell per row = free width / expected number
  // of cells landing in a row.
  const double total_width =
      std::accumulate(design.cells().begin(), design.cells().end(), 0.0,
                      [](double acc, const Cell& c) {
                        if (c.fixed) return acc;
                        return acc + c.width * static_cast<double>(c.height_rows);
                      });
  const double fill_per_row = total_width / static_cast<double>(chip.num_rows);
  const double free_per_row = std::max(0.0, chip.width() - fill_per_row);
  const double cells_per_row =
      static_cast<double>(design.num_cells()) /
      static_cast<double>(chip.num_rows);
  const double mean_gap =
      cells_per_row > 0.0 ? free_per_row / cells_per_row : 0.0;

  for (Cell& cell : design.cells()) {
    if (cell.fixed) continue;
    const auto max_base =
        static_cast<std::int64_t>(chip.num_rows - cell.height_rows);

    // Sample candidate base rows; keep the one with the smallest cursor
    // across the rows the cell would occupy.
    double best_x = std::numeric_limits<double>::infinity();
    std::size_t best_row = 0;
    for (int c = 0; c < opts.row_candidates; ++c) {
      auto base = static_cast<std::size_t>(rng.uniform_int(0, max_base));
      if (!cell.rail_compatible(chip, base)) {
        // Shift by one row to fix rail parity when possible.
        if (base > 0)
          --base;
        else
          ++base;
        if (base > static_cast<std::size_t>(max_base) ||
            !cell.rail_compatible(chip, base))
          continue;
      }
      double x = 0.0;
      for (std::size_t r = base; r < base + cell.height_rows; ++r)
        x = std::max(x, cursor[r]);
      x = advance_past_blockages(base, cell.height_rows, x, cell.width);
      if (x < best_x) {
        best_x = x;
        best_row = base;
      }
    }
    MCH_CHECK_MSG(std::isfinite(best_x), "no rail-compatible row sampled");

    const double jitter = std::clamp(opts.gap_jitter, 0.0, 1.0);
    const double gap =
        mean_gap * (1.0 + jitter * (2.0 * rng.uniform() - 1.0));
    const double x = advance_past_blockages(best_row, cell.height_rows,
                                            best_x + gap, cell.width);
    cell.x = x;
    cell.y = chip.row_y(best_row);
    cell.bottom_rail = chip.rail_at(best_row);
    for (std::size_t r = best_row; r < best_row + cell.height_rows; ++r)
      cursor[r] = x + cell.width;
  }

  // Compress rows that overflowed the right edge back inside the chip; the
  // base layout is only the scaffold for GP synthesis, but keeping it inside
  // the region keeps the perturbed GP realistic.
  double max_cursor = 0.0;
  for (double c : cursor) max_cursor = std::max(max_cursor, c);
  if (max_cursor > chip.width()) {
    const double squeeze = chip.width() / max_cursor;
    for (Cell& cell : design.cells())
      if (!cell.fixed) cell.x *= squeeze;
  }
}

/// Turns the legal-like base into a global placement by Gaussian noise.
void perturb_to_gp(Design& design, const GeneratorOptions& opts, Rng& rng) {
  const Chip& chip = design.chip();
  for (Cell& cell : design.cells()) {
    if (cell.fixed) continue;
    const double height =
        static_cast<double>(cell.height_rows) * chip.row_height;
    cell.gp_x = std::clamp(
        cell.x + rng.normal(0.0, opts.noise_x_sites * chip.site_width), 0.0,
        chip.width() - cell.width);
    cell.gp_y = std::clamp(
        cell.y + rng.normal(0.0, opts.noise_y_rows * chip.row_height), 0.0,
        chip.height() - height);
    cell.x = cell.gp_x;
    cell.y = cell.gp_y;
  }
}

/// Spatially local netlist via a uniform bucket grid over GP positions.
void build_netlist(Design& design, const GeneratorOptions& opts, Rng& rng) {
  const Chip& chip = design.chip();
  const std::size_t n = design.num_cells();
  if (n < 2 || opts.nets_per_cell <= 0.0) return;

  // Bucket size targets ~8 cells per bucket.
  const double target_buckets = static_cast<double>(n) / 8.0;
  const auto grid = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::sqrt(std::max(1.0, target_buckets))));
  const double bw = chip.width() / static_cast<double>(grid);
  const double bh = chip.height() / static_cast<double>(grid);

  const auto bucket_of = [&](double x, double y) {
    auto bx = static_cast<std::size_t>(std::clamp(
        x / bw, 0.0, static_cast<double>(grid - 1)));
    auto by = static_cast<std::size_t>(std::clamp(
        y / bh, 0.0, static_cast<double>(grid - 1)));
    return by * grid + bx;
  };

  std::vector<std::vector<std::size_t>> buckets(grid * grid);
  for (std::size_t i = 0; i < n; ++i) {
    const Cell& cell = design.cells()[i];
    buckets[bucket_of(cell.gp_x, cell.gp_y)].push_back(i);
  }

  const auto num_nets = static_cast<std::size_t>(
      std::llround(opts.nets_per_cell * static_cast<double>(n)));
  std::vector<std::size_t> pool;
  for (std::size_t k = 0; k < num_nets; ++k) {
    const auto anchor =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const Cell& a = design.cells()[anchor];
    const auto ab = bucket_of(a.gp_x, a.gp_y);
    const auto abx = ab % grid;
    const auto aby = ab / grid;

    // Candidate pool: the anchor's bucket and its 8 neighbors.
    pool.clear();
    for (std::ptrdiff_t dy = -1; dy <= 1; ++dy)
      for (std::ptrdiff_t dx = -1; dx <= 1; ++dx) {
        const auto bx = static_cast<std::ptrdiff_t>(abx) + dx;
        const auto by = static_cast<std::ptrdiff_t>(aby) + dy;
        if (bx < 0 || by < 0 || bx >= static_cast<std::ptrdiff_t>(grid) ||
            by >= static_cast<std::ptrdiff_t>(grid))
          continue;
        const auto& bucket =
            buckets[static_cast<std::size_t>(by) * grid +
                    static_cast<std::size_t>(bx)];
        pool.insert(pool.end(), bucket.begin(), bucket.end());
      }

    const auto pins = static_cast<std::size_t>(
        rng.uniform_int(opts.min_pins, opts.max_pins));
    Net net;
    net.pins.reserve(pins);
    const auto add_pin = [&](std::size_t cell_idx) {
      const Cell& c = design.cells()[cell_idx];
      Pin pin;
      pin.cell = cell_idx;
      // Pins sit inside the cell outline.
      pin.dx = rng.uniform(0.0, c.width);
      pin.dy = rng.uniform(
          0.0, static_cast<double>(c.height_rows) * chip.row_height);
      net.pins.push_back(pin);
    };
    add_pin(anchor);
    for (std::size_t p = 1; p < pins; ++p) {
      std::size_t pick;
      if (pool.size() >= 2) {
        pick = pool[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
      } else {
        pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      }
      add_pin(pick);
    }
    design.add_net(std::move(net));
  }
}

}  // namespace

db::Design generate_random_design(std::size_t num_single,
                                  std::size_t num_double, double density,
                                  const GeneratorOptions& options) {
  MCH_CHECK(num_single + num_double > 0);
  Rng rng(options.seed);

  std::vector<Cell> cells = make_cells(num_single, num_double, options, rng);
  Design design(size_chip(cells, density, options));
  for (Cell& cell : cells) design.add_cell(cell);

  const auto blocked = place_macros(design, options, rng);
  pack_base_placement(design, options, blocked, rng);
  perturb_to_gp(design, options, rng);
  build_netlist(design, options, rng);
  return design;
}

db::Design generate_design(const BenchmarkSpec& spec,
                           const GeneratorOptions& options) {
  MCH_CHECK(options.scale > 0.0 && options.scale <= 1.0);
  const auto scaled = [&](std::size_t count) {
    if (count == 0) return std::size_t{0};
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(options.scale * static_cast<double>(count))));
  };
  GeneratorOptions opts = options;
  // Derive a per-benchmark seed so every suite entry differs but remains
  // reproducible for a fixed options.seed.
  std::uint64_t h = options.seed;
  for (const char c : spec.name) h = h * 1099511628211ULL + static_cast<unsigned char>(c);
  opts.seed = h;

  db::Design design =
      generate_random_design(scaled(spec.num_single_cells),
                             scaled(spec.num_double_cells), spec.density, opts);
  design.name = spec.name;
  return design;
}

const char* to_string(ScaleVariant variant) {
  switch (variant) {
    case ScaleVariant::kBaseline:
      return "baseline";
    case ScaleVariant::kObstacleHeavy:
      return "obstacle-heavy";
    case ScaleVariant::kHighUtilization:
      return "high-utilization";
  }
  return "unknown";
}

db::Design generate_scale_design(ScaleVariant variant, std::size_t num_cells,
                                 std::uint64_t seed) {
  MCH_CHECK(num_cells > 0);
  // The paper's benchmark mix: ~10% of cells double-height.
  const std::size_t num_double = num_cells / 10;
  const std::size_t num_single = num_cells - num_double;

  GeneratorOptions options;
  options.seed = seed;
  double density = 0.8;
  switch (variant) {
    case ScaleVariant::kBaseline:
      break;
    case ScaleVariant::kObstacleHeavy:
      options.fixed_macros = std::max<std::size_t>(4, num_cells / 2000);
      break;
    case ScaleVariant::kHighUtilization:
      density = 0.92;
      break;
  }

  db::Design design =
      generate_random_design(num_single, num_double, density, options);
  design.name = std::string("scale-") + to_string(variant);
  return design;
}

const char* to_string(DegenerateMode mode) {
  switch (mode) {
    case DegenerateMode::kNearSingularCoupling:
      return "near-singular-coupling";
    case DegenerateMode::kInfeasibleRowCapacity:
      return "infeasible-row-capacity";
    case DegenerateMode::kObstacleSaturatedRows:
      return "obstacle-saturated-rows";
  }
  return "unknown";
}

db::Design generate_degenerate_design(DegenerateMode mode,
                                      std::size_t num_cells,
                                      std::uint64_t seed) {
  MCH_CHECK(num_cells > 0);
  Rng rng(seed);

  Chip chip;
  chip.site_width = 1.0;
  chip.row_height = 12.0;
  chip.bottom_rail = RailType::kVss;
  chip.num_rows = 8;

  const auto add_movable = [&](Design& design, double width,
                               std::uint16_t height_rows, double x, double y) {
    Cell cell;
    cell.width = width;
    cell.height_rows = height_rows;
    cell.x = x;
    cell.y = y;
    design.add_cell(cell);
  };

  switch (mode) {
    case DegenerateMode::kNearSingularCoupling: {
      // Triple-height cells (odd height: no rail constraint) in one column
      // across two row bands. All of them land at nearly the same x, so the
      // optimum activates the full spacing chain of every coupled row.
      const double width = 6.0;
      chip.num_sites = static_cast<std::size_t>(
          width * static_cast<double>(num_cells));  // plenty of room in x
      Design design(chip);
      const double center = 0.5 * chip.width();
      for (std::size_t i = 0; i < num_cells; ++i) {
        const std::size_t base = (i % 2) * 3;  // rows 0–2 or 3–5
        add_movable(design, width, 3, center + rng.normal(0.0, 0.5),
                    chip.row_y(base) + rng.normal(0.0, 1.0));
      }
      design.commit_positions_as_gp();
      return design;
    }
    case DegenerateMode::kInfeasibleRowCapacity: {
      // More movable width than the whole chip holds: capacity ratio ≈ 1.7.
      const double width = 8.0;
      chip.num_sites = std::max<std::size_t>(
          8, static_cast<std::size_t>(
                 width * static_cast<double>(num_cells) /
                 (1.7 * static_cast<double>(chip.num_rows))));
      Design design(chip);
      for (std::size_t i = 0; i < num_cells; ++i) {
        const double x =
            rng.uniform(0.3 * chip.width(),
                        std::max(0.3 * chip.width() + 1.0,
                                 0.7 * chip.width() - width));
        const std::size_t row = i % chip.num_rows;
        add_movable(design, width, 1, x,
                    chip.row_y(row) + rng.normal(0.0, 1.0));
      }
      design.commit_positions_as_gp();
      return design;
    }
    case DegenerateMode::kObstacleSaturatedRows: {
      // Macro walls over every row leave a corridor of ~10% of the chip,
      // into which far more movable width is crowded than fits.
      const double width = 4.0;
      chip.num_sites = std::max<std::size_t>(
          64, static_cast<std::size_t>(width * static_cast<double>(num_cells)));
      Design design(chip);
      const double corridor_lo = 0.45 * chip.width();
      const double corridor_hi = 0.55 * chip.width();
      const auto add_wall = [&](double x, double wall_width) {
        Cell wall;
        wall.width = wall_width;
        wall.height_rows = db::to_height_rows(chip.num_rows);
        wall.fixed = true;
        wall.x = x;
        wall.y = 0.0;
        design.add_cell(wall);
      };
      add_wall(0.0, corridor_lo);
      add_wall(corridor_hi, chip.width() - corridor_hi);
      for (std::size_t i = 0; i < num_cells; ++i) {
        const double x = rng.uniform(
            corridor_lo, std::max(corridor_lo + 1.0, corridor_hi - width));
        const std::size_t row = i % chip.num_rows;
        add_movable(design, width, 1, x,
                    chip.row_y(row) + rng.normal(0.0, 1.0));
      }
      design.commit_positions_as_gp();
      return design;
    }
  }
  MCH_CHECK_MSG(false, "unknown DegenerateMode");
  return Design{};
}

}  // namespace mch::gen
