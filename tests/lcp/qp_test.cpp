#include "lcp/qp.h"

#include <gtest/gtest.h>

#include "lcp/lemke.h"
#include "linalg/sparse.h"

namespace mch::lcp {
namespace {

// The single-row example of the paper's Figure 2: five single-height cells
// in two rows; constraint matrix B has rows
//   x4 - x2 >= w2,  x3 - x1 >= w1,  x5 - x3 >= w3.
StructuredQp figure2_qp() {
  StructuredQp qp;
  for (int i = 0; i < 5; ++i)
    qp.K.add_block(linalg::DenseMatrix::identity(1));
  // GP targets: row 1 holds c2, c4; row 2 holds c1, c3, c5.
  qp.p = {-1.0, -2.0, -4.0, -5.0, -9.0};  // p_i = -x'_i
  linalg::CooMatrix coo(3, 5);
  coo.add(0, 1, -1.0);
  coo.add(0, 3, 1.0);
  coo.add(1, 0, -1.0);
  coo.add(1, 2, 1.0);
  coo.add(2, 2, -1.0);
  coo.add(2, 4, 1.0);
  qp.B = linalg::CsrMatrix::from_coo(coo);
  qp.b = {2.0, 3.0, 2.0};  // w2, w1, w3
  return qp;
}

TEST(StructuredQpTest, Dimensions) {
  const StructuredQp qp = figure2_qp();
  EXPECT_EQ(qp.num_variables(), 5u);
  EXPECT_EQ(qp.num_constraints(), 3u);
  EXPECT_EQ(qp.lcp_size(), 8u);
}

TEST(StructuredQpTest, ObjectiveAtGpPositionsIsMinusHalfNormP) {
  const StructuredQp qp = figure2_qp();
  // At x = x' (= -p), objective = ½‖x‖² − ‖x‖² = −½‖x‖².
  Vector x(5);
  for (std::size_t i = 0; i < 5; ++i) x[i] = -qp.p[i];
  double norm_sq = 0.0;
  for (const double v : x) norm_sq += v * v;
  EXPECT_NEAR(qp.objective(x), -0.5 * norm_sq, 1e-12);
}

TEST(StructuredQpTest, ConstraintViolationDetected) {
  const StructuredQp qp = figure2_qp();
  // All zeros: x4 - x2 = 0 < 2 → violation 2 (b2 = w1 = 3 is the worst).
  EXPECT_DOUBLE_EQ(qp.max_constraint_violation(Vector(5, 0.0)), 3.0);
  // Feasible point.
  EXPECT_DOUBLE_EQ(qp.max_constraint_violation({0, 0, 3, 2, 5}), 0.0);
}

TEST(StructuredQpTest, LcpApplyMatchesDenseAssembly) {
  const StructuredQp qp = figure2_qp();
  const DenseLcp dense = qp.to_dense_lcp();
  Vector z(qp.lcp_size());
  for (std::size_t i = 0; i < z.size(); ++i)
    z[i] = 0.3 * static_cast<double>(i) - 1.0;

  Vector via_struct;
  qp.lcp_apply(z, via_struct);
  Vector via_dense;
  dense.A.multiply(z, via_dense);
  for (std::size_t i = 0; i < z.size(); ++i) via_dense[i] += dense.q[i];

  ASSERT_EQ(via_struct.size(), via_dense.size());
  for (std::size_t i = 0; i < z.size(); ++i)
    EXPECT_NEAR(via_struct[i], via_dense[i], 1e-12);
}

TEST(StructuredQpTest, DenseLcpHasSaddleStructure) {
  const StructuredQp qp = figure2_qp();
  const DenseLcp dense = qp.to_dense_lcp();
  const std::size_t n = qp.num_variables();
  const std::size_t m = qp.num_constraints();
  // (1,1) block = K (identity here); (1,2) = -Bᵀ; (2,1) = B; (2,2) = 0.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_DOUBLE_EQ(dense.A(i, j), i == j ? 1.0 : 0.0);
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c < n; ++c)
      EXPECT_DOUBLE_EQ(dense.A(n + r, c), qp.B.at(r, c));
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c < n; ++c)
      EXPECT_DOUBLE_EQ(dense.A(c, n + r), -qp.B.at(r, c));
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c < m; ++c)
      EXPECT_DOUBLE_EQ(dense.A(n + r, n + c), 0.0);
  // q = [p; -b].
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(dense.q[i], qp.p[i]);
  for (std::size_t i = 0; i < m; ++i)
    EXPECT_DOUBLE_EQ(dense.q[n + i], -qp.b[i]);
}

// Theorem 1: the LCP solution's primal part minimizes the QP. Verified by
// solving the dense LCP with Lemke and checking KKT residuals + objective
// against nearby feasible points.
TEST(StructuredQpTest, LemkeSolutionIsQpOptimum) {
  const StructuredQp qp = figure2_qp();
  const LemkeResult lemke = solve_lemke(qp.to_dense_lcp());
  ASSERT_EQ(lemke.status, LemkeStatus::kSolved);
  EXPECT_LT(qp.lcp_residual(lemke.z).max(), 1e-8);

  Vector x(lemke.z.begin(), lemke.z.begin() + 5);
  EXPECT_LE(qp.max_constraint_violation(x), 1e-8);
  const double optimum = qp.objective(x);

  // Any feasible perturbation must not improve the objective.
  const Vector directions[] = {
      {1, 0, 0, 0, 0}, {0, 1, 0, 0, 0}, {0, 0, 1, 1, 1}, {-1, -1, 0, 0, 0}};
  for (const Vector& d : directions) {
    Vector y = x;
    for (std::size_t i = 0; i < 5; ++i) y[i] += 0.05 * d[i];
    bool feasible = qp.max_constraint_violation(y) <= 1e-12;
    for (const double v : y) feasible = feasible && v >= 0.0;
    if (feasible) {
      EXPECT_GE(qp.objective(y), optimum - 1e-9);
    }
  }
}

TEST(StructuredQpTest, ResidualFlagsViolations) {
  const StructuredQp qp = figure2_qp();
  Vector z(qp.lcp_size(), 0.0);
  z[0] = -1.0;  // negative primal
  const LcpResidual res = qp.lcp_residual(z);
  EXPECT_GE(res.z_negativity, 1.0);
}

}  // namespace
}  // namespace mch::lcp
