#include "linalg/vector_ops.h"

#include <algorithm>
#include <cmath>

#include "runtime/parallel.h"
#include "util/check.h"

namespace mch::linalg {

namespace {
using runtime::kGrainElementwise;
using runtime::parallel_for;
using runtime::parallel_reduce;
}  // namespace

double dot(const Vector& a, const Vector& b) {
  MCH_CHECK(a.size() == b.size());
  // Fixed-chunk reduction (see runtime/parallel.h): the summation order is
  // a function of the vector length only, so the result is bitwise
  // reproducible at every thread count.
  return parallel_reduce(
      std::size_t{0}, a.size(), kGrainElementwise, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double sum = 0.0;
        for (std::size_t i = lo; i < hi; ++i) sum += a[i] * b[i];
        return sum;
      },
      [](double acc, double partial) { return acc + partial; });
}

void axpy(double alpha, const Vector& x, Vector& y) {
  MCH_CHECK(x.size() == y.size());
  parallel_for(std::size_t{0}, x.size(), kGrainElementwise,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) y[i] += alpha * x[i];
               });
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

double norm_inf(const Vector& a) {
  return parallel_reduce(
      std::size_t{0}, a.size(), kGrainElementwise, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double best = 0.0;
        for (std::size_t i = lo; i < hi; ++i)
          best = std::max(best, std::abs(a[i]));
        return best;
      },
      [](double acc, double partial) { return std::max(acc, partial); });
}

double diff_norm_inf(const Vector& a, const Vector& b) {
  MCH_CHECK(a.size() == b.size());
  return parallel_reduce(
      std::size_t{0}, a.size(), kGrainElementwise, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double best = 0.0;
        for (std::size_t i = lo; i < hi; ++i)
          best = std::max(best, std::abs(a[i] - b[i]));
        return best;
      },
      [](double acc, double partial) { return std::max(acc, partial); });
}

void scale(double alpha, Vector& a) {
  parallel_for(std::size_t{0}, a.size(), kGrainElementwise,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) a[i] *= alpha;
               });
}

void abs_into(const Vector& a, Vector& out) {
  out.resize(a.size());
  parallel_for(std::size_t{0}, a.size(), kGrainElementwise,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) out[i] = std::abs(a[i]);
               });
}

void positive_part(const Vector& a, Vector& out) {
  out.resize(a.size());
  parallel_for(std::size_t{0}, a.size(), kGrainElementwise,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i)
                   out[i] = std::max(a[i], 0.0);
               });
}

}  // namespace mch::linalg
