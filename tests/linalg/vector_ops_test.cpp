#include "linalg/vector_ops.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace mch::linalg {
namespace {

TEST(VectorOpsTest, DotProduct) {
  EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
}

TEST(VectorOpsTest, DotEmptyIsZero) { EXPECT_DOUBLE_EQ(dot({}, {}), 0.0); }

TEST(VectorOpsTest, DotSizeMismatchThrows) {
  EXPECT_THROW(dot({1, 2}, {1}), CheckError);
}

TEST(VectorOpsTest, Axpy) {
  Vector y = {1, 1, 1};
  axpy(2.0, {1, 2, 3}, y);
  EXPECT_EQ(y, (Vector{3, 5, 7}));
}

TEST(VectorOpsTest, Norm2) {
  EXPECT_DOUBLE_EQ(norm2({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(norm2({}), 0.0);
}

TEST(VectorOpsTest, NormInf) {
  EXPECT_DOUBLE_EQ(norm_inf({1, -7, 3}), 7.0);
  EXPECT_DOUBLE_EQ(norm_inf({}), 0.0);
}

TEST(VectorOpsTest, DiffNormInf) {
  EXPECT_DOUBLE_EQ(diff_norm_inf({1, 2, 3}, {1, 5, 2}), 3.0);
  EXPECT_DOUBLE_EQ(diff_norm_inf({1}, {1}), 0.0);
}

TEST(VectorOpsTest, Scale) {
  Vector a = {1, -2, 4};
  scale(-0.5, a);
  EXPECT_EQ(a, (Vector{-0.5, 1, -2}));
}

TEST(VectorOpsTest, AbsInto) {
  Vector out;
  abs_into({-1, 2, -3}, out);
  EXPECT_EQ(out, (Vector{1, 2, 3}));
}

TEST(VectorOpsTest, AbsIntoResizes) {
  Vector out(10, 99.0);
  abs_into({-1.5}, out);
  EXPECT_EQ(out, (Vector{1.5}));
}

TEST(VectorOpsTest, PositivePart) {
  Vector out;
  positive_part({-1, 0, 2.5}, out);
  EXPECT_EQ(out, (Vector{0, 0, 2.5}));
}

}  // namespace
}  // namespace mch::linalg
