// Reproduces Figure 5 of the paper: the legalized layout of fft_2 with
// displacement vectors (5a) and a zoomed partial layout (5b), written as
// SVG files, plus a quantitative order-preservation audit — the property
// Fig. 5(b) illustrates ("the cell order is well preserved by our
// algorithm, a key to our superior results").
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "io/svg.h"
#include "legal/flow.h"
#include "legal/row_assign.h"
#include "util/timer.h"

int main() {
  using namespace mch;
  const gen::GeneratorOptions options = bench::bench_options();
  std::printf("Figure 5 — fft_2 legalization layout & order preservation "
              "(scale %.3f, seed %llu)\n\n",
              options.scale,
              static_cast<unsigned long long>(options.seed));

  db::Design design =
      gen::generate_design(gen::find_spec("fft_2"), options);
  mch::Timer flow_timer;
  const legal::FlowResult flow = legal::legalize(design);
  const double flow_seconds = flow_timer.seconds();
  if (!flow.legal) {
    std::cout << "legalization FAILED: " << flow.legality.summary() << "\n";
    return 1;
  }

  // Fig. 5(a): full layout, cells blue, displacement red.
  io::SvgOptions full;
  full.pixels_per_unit = 1000.0 / design.chip().width();
  io::save_svg("fig5a_fft_2_full.svg", design, full);

  // Fig. 5(b): zoomed window on the chip center.
  io::SvgOptions zoom;
  zoom.window_w = design.chip().width() / 8.0;
  zoom.window_h = design.chip().height() / 8.0;
  zoom.window_x = (design.chip().width() - zoom.window_w) / 2.0;
  zoom.window_y = (design.chip().height() - zoom.window_h) / 2.0;
  zoom.pixels_per_unit = 1000.0 / zoom.window_w;
  io::save_svg("fig5b_fft_2_zoom.svg", design, zoom);

  // Order preservation: among pairs of cells that share a row in the final
  // placement and had distinct GP x, count inversions.
  std::vector<std::vector<std::size_t>> row_cells(design.chip().num_rows);
  for (std::size_t i = 0; i < design.num_cells(); ++i) {
    const db::Cell& cell = design.cells()[i];
    const auto base = static_cast<std::size_t>(
        cell.y / design.chip().row_height + 0.5);
    for (std::size_t r = base; r < base + cell.height_rows; ++r)
      row_cells[r].push_back(i);
  }
  std::size_t pairs = 0, inversions = 0;
  for (const auto& ids : row_cells)
    for (std::size_t a = 0; a < ids.size(); ++a)
      for (std::size_t b = a + 1; b < ids.size(); ++b) {
        const db::Cell& ca = design.cells()[ids[a]];
        const db::Cell& cb = design.cells()[ids[b]];
        if (ca.gp_x == cb.gp_x) continue;
        ++pairs;
        const bool gp_order = ca.gp_x < cb.gp_x;
        const bool final_order =
            ca.x != cb.x ? ca.x < cb.x : ids[a] < ids[b];
        if (gp_order != final_order) ++inversions;
      }

  const eval::DisplacementStats disp = eval::displacement(design);
  std::printf("cells:                  %zu\n", design.num_cells());
  std::printf("legal:                  yes\n");
  std::printf("total displacement:     %.1f sites (mean %.2f, max %.2f)\n",
              disp.total_sites, disp.mean_sites, disp.max_sites);
  std::printf("same-row cell pairs:    %zu\n", pairs);
  std::printf("order inversions:       %zu (%.4f%%)\n", inversions,
              pairs ? 100.0 * static_cast<double>(inversions) /
                          static_cast<double>(pairs)
                    : 0.0);
  std::printf("wrote fig5a_fft_2_full.svg and fig5b_fft_2_zoom.svg\n");
  std::cout << "\nPaper shape: the MMSIM honors the GP ordering within "
               "rows, so inversions can come only from the Tetris-like "
               "relocation of the few illegal cells — expect ~0%.\n";
  mch::bench::print_peak_rss();
  bench::JsonSnapshot json("fig5_order_preservation");
  json.add("fft_2", design.num_cells(), flow_seconds);
  json.write();
  return 0;
}
