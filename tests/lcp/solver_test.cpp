// Tests of the pluggable LcpSolver layer: the factory, the three adapters
// agreeing on solutions, structural guards, and the Schur coupling-break
// mask used by sub-problems extracted from a larger system.
#include "lcp/solver.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <string>

#include "util/check.h"

namespace mch::lcp {
namespace {

using linalg::CooMatrix;
using linalg::CsrMatrix;
using linalg::DenseMatrix;

DenseMatrix scalar_block(double value) {
  DenseMatrix block(1, 1);
  block(0, 0) = value;
  return block;
}

/// Three cells in one row with two spacing constraints — a miniature of the
/// legalization QP with an active constraint at the optimum.
StructuredQp chain_qp() {
  StructuredQp qp;
  for (int i = 0; i < 3; ++i) qp.K.add_block(scalar_block(1.0));
  qp.p = {-10.0, -11.0, -20.0};  // targets 10, 11, 20; widths force spread
  CooMatrix coo(2, 3);
  coo.add(0, 0, -1.0);
  coo.add(0, 1, 1.0);
  coo.add(1, 1, -1.0);
  coo.add(1, 2, 1.0);
  qp.B = CsrMatrix::from_coo(coo);
  qp.b = {4.0, 4.0};  // cell widths
  return qp;
}

/// Bound-constrained QP (no spacing rows): LCP(p, K) directly.
StructuredQp unconstrained_qp() {
  StructuredQp qp;
  qp.K.add_block(scalar_block(2.0));
  qp.K.add_block(scalar_block(4.0));
  qp.p = {-6.0, 8.0};  // solutions max(0, −p/k) = {3, 0}
  qp.B = CsrMatrix::from_coo(CooMatrix(0, 2));
  return qp;
}

TEST(LcpSolverTest, FactoryReturnsRequestedKind) {
  const StructuredQp qp = chain_qp();
  EXPECT_EQ(make_lcp_solver(LcpSolverKind::kMmsim, qp)->kind(),
            LcpSolverKind::kMmsim);
  EXPECT_EQ(make_lcp_solver(LcpSolverKind::kLemke, qp)->kind(),
            LcpSolverKind::kLemke);
  const StructuredQp free_qp = unconstrained_qp();
  EXPECT_EQ(make_lcp_solver(LcpSolverKind::kPsor, free_qp)->kind(),
            LcpSolverKind::kPsor);
}

TEST(LcpSolverTest, ToStringNames) {
  EXPECT_STREQ(to_string(LcpSolverKind::kMmsim), "mmsim");
  EXPECT_STREQ(to_string(LcpSolverKind::kPsor), "psor");
  EXPECT_STREQ(to_string(LcpSolverKind::kLemke), "lemke");
}

TEST(LcpSolverTest, MmsimAdapterMatchesDirectSolver) {
  const StructuredQp qp = chain_qp();
  LcpSolverConfig config;
  const LcpSolveResult adapted =
      make_lcp_solver(LcpSolverKind::kMmsim, qp, config)->solve();
  const MmsimResult direct = MmsimSolver(qp, config.mmsim).solve();
  EXPECT_TRUE(adapted.converged);
  EXPECT_EQ(adapted.iterations, direct.iterations);
  ASSERT_EQ(adapted.x.size(), direct.x.size());
  for (std::size_t i = 0; i < adapted.x.size(); ++i)
    EXPECT_EQ(adapted.x[i], direct.x[i]) << "x[" << i << "]";
  ASSERT_EQ(adapted.dual.size(), direct.dual.size());
  for (std::size_t i = 0; i < adapted.dual.size(); ++i)
    EXPECT_EQ(adapted.dual[i], direct.dual[i]) << "dual[" << i << "]";
}

TEST(LcpSolverTest, LemkeAgreesWithMmsim) {
  const StructuredQp qp = chain_qp();
  LcpSolverConfig config;
  config.mmsim.tolerance = 1e-10;
  config.mmsim.residual_tolerance = 1e-9;
  const LcpSolveResult lemke =
      make_lcp_solver(LcpSolverKind::kLemke, qp, config)->solve();
  const LcpSolveResult mmsim =
      make_lcp_solver(LcpSolverKind::kMmsim, qp, config)->solve();
  ASSERT_TRUE(lemke.converged);
  ASSERT_TRUE(mmsim.converged);
  ASSERT_EQ(lemke.x.size(), mmsim.x.size());
  for (std::size_t i = 0; i < lemke.x.size(); ++i)
    EXPECT_NEAR(lemke.x[i], mmsim.x[i], 1e-6) << "x[" << i << "]";
  // The spread forced by the widths: feasibility B x ≥ b holds exactly for
  // the pivoting solver.
  EXPECT_GE(lemke.x[1] - lemke.x[0], qp.b[0] - 1e-12);
  EXPECT_GE(lemke.x[2] - lemke.x[1], qp.b[1] - 1e-12);
}

TEST(LcpSolverTest, PsorSolvesUnconstrainedQp) {
  const StructuredQp qp = unconstrained_qp();
  const LcpSolveResult result =
      make_lcp_solver(LcpSolverKind::kPsor, qp)->solve();
  ASSERT_TRUE(result.converged);
  ASSERT_EQ(result.x.size(), 2u);
  EXPECT_NEAR(result.x[0], 3.0, 1e-8);
  EXPECT_NEAR(result.x[1], 0.0, 1e-8);
  EXPECT_TRUE(result.dual.empty());
}

TEST(LcpSolverTest, PsorRejectsConstrainedQp) {
  const StructuredQp qp = chain_qp();
  EXPECT_THROW(make_lcp_solver(LcpSolverKind::kPsor, qp), CheckError);
}

TEST(LcpSolverTest, SchurCouplingBreaksZeroTheTridiagonal) {
  const StructuredQp qp = chain_qp();
  const linalg::Tridiagonal full = schur_tridiagonal(qp.K, qp.B);
  // The two rows share variable 1, so the full approximation couples them.
  ASSERT_NE(full.upper(0), 0.0);
  ASSERT_NE(full.lower(0), 0.0);

  // Mark row 1 as not adjacent to row 0 in the (hypothetical) parent
  // ordering: the coupling must be dropped, the diagonal untouched.
  const std::vector<bool> breaks = {false, true};
  const linalg::Tridiagonal broken = schur_tridiagonal(qp.K, qp.B, &breaks);
  EXPECT_EQ(broken.upper(0), 0.0);
  EXPECT_EQ(broken.lower(0), 0.0);
  EXPECT_EQ(broken.diag(0), full.diag(0));
  EXPECT_EQ(broken.diag(1), full.diag(1));
}

TEST(LcpSolverTest, MmsimAdapterHonorsCouplingBreaks) {
  const StructuredQp qp = chain_qp();
  const std::vector<bool> breaks = {false, true};
  LcpSolverConfig config;
  config.schur_coupling_breaks = &breaks;
  // Solver setup must pick up the mask (observable through the weaker
  // splitting still converging to the same solution).
  const LcpSolveResult result =
      make_lcp_solver(LcpSolverKind::kMmsim, qp, config)->solve();
  const LcpSolveResult reference =
      make_lcp_solver(LcpSolverKind::kLemke, qp)->solve();
  ASSERT_TRUE(result.converged);
  for (std::size_t i = 0; i < result.x.size(); ++i)
    EXPECT_NEAR(result.x[i], reference.x[i], 1e-3) << "x[" << i << "]";
}

// --- escalation ladder -----------------------------------------------------

/// Ladder-shape tests pin fused kernels ON so the kReference (unfused) rung
/// exists regardless of the ambient MCH_FUSED_KERNELS (.fused-off variant):
/// with an already-unfused primary the ladder rightly skips that rung, which
/// would shift every attempt count below.
LcpSolverConfig fused_config() {
  LcpSolverConfig config;
  config.mmsim.fused = true;
  return config;
}

TEST(RecoveryLadderTest, ConvergedPrimaryIsUntouched) {
  const StructuredQp qp = chain_qp();
  const RecoveredSolve recovered = solve_with_recovery(
      LcpSolverKind::kMmsim, qp, LcpSolverConfig{}, RecoveryOptions{});
  const LcpSolveResult direct =
      make_lcp_solver(LcpSolverKind::kMmsim, qp)->solve();
  EXPECT_EQ(recovered.rung, RecoveryRung::kPrimary);
  EXPECT_EQ(recovered.attempts, 1u);
  EXPECT_EQ(recovered.wasted_iterations, 0u);
  ASSERT_TRUE(recovered.result.converged);
  // Recovery must not perturb the success path: bitwise-equal result.
  ASSERT_EQ(recovered.result.x.size(), direct.x.size());
  for (std::size_t i = 0; i < direct.x.size(); ++i)
    EXPECT_EQ(recovered.result.x[i], direct.x[i]) << "x[" << i << "]";
}

TEST(RecoveryLadderTest, ForcedFailureRecoversAtEscalatedRung) {
  const StructuredQp qp = chain_qp();
  RecoveryOptions recovery;
  recovery.forced_failures = 1;
  const RecoveredSolve recovered = solve_with_recovery(
      LcpSolverKind::kMmsim, qp, LcpSolverConfig{}, recovery);
  EXPECT_EQ(recovered.rung, RecoveryRung::kEscalated);
  EXPECT_EQ(recovered.attempts, 2u);
  EXPECT_GT(recovered.wasted_iterations, 0u);
  ASSERT_TRUE(recovered.result.converged);
  const LcpSolveResult reference =
      make_lcp_solver(LcpSolverKind::kLemke, qp)->solve();
  for (std::size_t i = 0; i < reference.x.size(); ++i)
    EXPECT_NEAR(recovered.result.x[i], reference.x[i], 1e-3);
}

TEST(RecoveryLadderTest, LadderFallsBackToReferenceThenLemke) {
  const StructuredQp qp = chain_qp();
  RecoveryOptions recovery;
  recovery.forced_failures = 2;  // primary + escalated forced down
  RecoveredSolve recovered = solve_with_recovery(
      LcpSolverKind::kMmsim, qp, fused_config(), recovery);
  EXPECT_EQ(recovered.rung, RecoveryRung::kReference);
  EXPECT_EQ(recovered.attempts, 3u);

  recovery.forced_failures = 3;  // ... + reference: m > 0, so PSOR is
                                 // skipped and Lemke is the last resort
  recovered = solve_with_recovery(LcpSolverKind::kMmsim, qp,
                                  fused_config(), recovery);
  EXPECT_EQ(recovered.rung, RecoveryRung::kLemke);
  EXPECT_EQ(recovered.attempts, 4u);
  ASSERT_TRUE(recovered.result.converged);
}

TEST(RecoveryLadderTest, PsorRungServesBoundConstrainedQps) {
  const StructuredQp qp = unconstrained_qp();
  RecoveryOptions recovery;
  recovery.forced_failures = 3;  // primary, escalated, reference forced down
  const RecoveredSolve recovered = solve_with_recovery(
      LcpSolverKind::kMmsim, qp, fused_config(), recovery);
  EXPECT_EQ(recovered.rung, RecoveryRung::kPsor);
  ASSERT_TRUE(recovered.result.converged);
  EXPECT_NEAR(recovered.result.x[0], 3.0, 1e-6);
  EXPECT_NEAR(recovered.result.x[1], 0.0, 1e-6);
}

TEST(RecoveryLadderTest, ExhaustedLadderReportsEveryAttempt) {
  const StructuredQp qp = chain_qp();
  RecoveryOptions recovery;
  recovery.forced_failures = 100;
  const RecoveredSolve recovered = solve_with_recovery(
      LcpSolverKind::kMmsim, qp, fused_config(), recovery);
  EXPECT_EQ(recovered.rung, RecoveryRung::kExhausted);
  // primary, escalated, reference, Lemke (PSOR skipped: m > 0).
  EXPECT_EQ(recovered.attempts, 4u);
  EXPECT_GT(recovered.wasted_iterations, 0u);
}

TEST(RecoveryLadderTest, DisabledRecoverySurfacesTheFailure) {
  const StructuredQp qp = chain_qp();
  RecoveryOptions recovery;
  recovery.enabled = false;
  recovery.forced_failures = 1;
  const RecoveredSolve recovered = solve_with_recovery(
      LcpSolverKind::kMmsim, qp, LcpSolverConfig{}, recovery);
  EXPECT_EQ(recovered.rung, RecoveryRung::kExhausted);
  EXPECT_EQ(recovered.attempts, 1u);
}

TEST(RecoveryLadderTest, ZeroIterationBudgetRecoversByEscalation) {
  const StructuredQp qp = chain_qp();
  LcpSolverConfig config;
  config.mmsim.max_iterations = 1;  // genuine failure, not injected
  RecoveryOptions recovery;
  recovery.budget_multiplier = 20000;
  const RecoveredSolve recovered = solve_with_recovery(
      LcpSolverKind::kMmsim, qp, config, recovery);
  EXPECT_EQ(recovered.rung, RecoveryRung::kEscalated);
  ASSERT_TRUE(recovered.result.converged);
  EXPECT_EQ(recovered.wasted_iterations, 1u);
}

TEST(RecoveryLadderTest, LadderRespectsSizeGates) {
  const StructuredQp qp = chain_qp();
  RecoveryOptions recovery;
  recovery.forced_failures = 100;
  recovery.lemke_fallback_max_size = 2;  // below n + m = 5: Lemke gated off
  const RecoveredSolve recovered = solve_with_recovery(
      LcpSolverKind::kMmsim, qp, fused_config(), recovery);
  EXPECT_EQ(recovered.rung, RecoveryRung::kExhausted);
  EXPECT_EQ(recovered.attempts, 3u);  // primary, escalated, reference only
}

TEST(RecoveryLadderTest, EnvironmentResolvesForcedFailures) {
  const char* saved = std::getenv("MCH_FORCE_SOLVER_FAILURE");
  const std::string saved_value = saved ? saved : "";

  ::setenv("MCH_FORCE_SOLVER_FAILURE", "3", 1);
  EXPECT_EQ(resolve_recovery_options().forced_failures, 3u);
  // Explicit settings win over the ambient fault-injection variant.
  RecoveryOptions explicit_options;
  explicit_options.forced_failures = 7;
  EXPECT_EQ(resolve_recovery_options(explicit_options).forced_failures, 7u);
  ::unsetenv("MCH_FORCE_SOLVER_FAILURE");
  EXPECT_EQ(resolve_recovery_options().forced_failures, 0u);

  if (saved)
    ::setenv("MCH_FORCE_SOLVER_FAILURE", saved_value.c_str(), 1);
  else
    ::unsetenv("MCH_FORCE_SOLVER_FAILURE");
}

}  // namespace
}  // namespace mch::lcp
