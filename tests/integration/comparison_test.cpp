// Integration tests mirroring the Table-2 comparison shape: on dense
// designs the MMSIM flow achieves the smallest total displacement of all
// implemented methods, and all methods produce legal placements.
#include <gtest/gtest.h>

#include <map>

#include "eval/suite_runner.h"

namespace mch {
namespace {

std::map<eval::Legalizer, eval::RunResult> run_all(const char* name,
                                                   std::uint64_t seed) {
  gen::GeneratorOptions opts;
  opts.scale = 0.03;
  opts.seed = seed;
  std::map<eval::Legalizer, eval::RunResult> results;
  for (const auto which :
       {eval::Legalizer::kMmsim, eval::Legalizer::kTetris,
        eval::Legalizer::kLocalBase, eval::Legalizer::kLocalImproved,
        eval::Legalizer::kMixedAbacus}) {
    db::Design design = gen::generate_design(gen::find_spec(name), opts);
    results[which] = eval::run_legalizer(design, which);
  }
  return results;
}

TEST(ComparisonTest, AllMethodsLegalOnDenseBenchmark) {
  const auto results = run_all("des_perf_1", 1);
  for (const auto& [which, result] : results)
    EXPECT_TRUE(result.legal)
        << eval::to_string(which) << ": " << result.legality_summary;
}

TEST(ComparisonTest, MmsimBestDisplacementOnDenseBenchmark) {
  const auto results = run_all("des_perf_1", 2);
  const double ours = results.at(eval::Legalizer::kMmsim).disp.total_sites;
  for (const auto& [which, result] : results) {
    if (which == eval::Legalizer::kMmsim) continue;
    EXPECT_LE(ours, result.disp.total_sites * 1.001)
        << "beaten by " << eval::to_string(which);
  }
}

TEST(ComparisonTest, TetrisWorstOnDenseBenchmark) {
  // The historical frontier-packing greedy trails the modern methods.
  const auto results = run_all("fft_1", 3);
  const double tetris = results.at(eval::Legalizer::kTetris).disp.total_sites;
  EXPECT_GT(tetris,
            results.at(eval::Legalizer::kMmsim).disp.total_sites * 0.999);
  EXPECT_GT(tetris,
            results.at(eval::Legalizer::kMixedAbacus).disp.total_sites *
                0.999);
}

TEST(ComparisonTest, MmsimDeltaHpwlCompetitive) {
  // Table 2 shape: "Ours" has the best (or tied) normalized ΔHPWL. Allow a
  // generous factor on a single instance — the paper's claim is an average.
  const auto results = run_all("des_perf_1", 4);
  const double ours = results.at(eval::Legalizer::kMmsim).delta_hpwl;
  for (const auto& [which, result] : results) {
    if (which == eval::Legalizer::kMmsim) continue;
    EXPECT_LE(ours, result.delta_hpwl * 2.0 + 1e-4)
        << "vs " << eval::to_string(which);
  }
}

TEST(ComparisonTest, LowDensityAllMethodsCloseToFree) {
  const auto results = run_all("pci_bridge32_b", 5);
  for (const auto& [which, result] : results) {
    EXPECT_TRUE(result.legal) << eval::to_string(which);
    EXPECT_LT(result.disp.mean_sites, 6.0) << eval::to_string(which);
  }
}

}  // namespace
}  // namespace mch
