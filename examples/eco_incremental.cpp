// ECO-style incremental legalization through the resident service.
//
// A service::LegalizationSession loads the design once and keeps the
// legalization model, the constraint partition, the continuous solution,
// and the solver workspaces resident. After an engineering change order
// perturbs a handful of cells, the session re-solves only the connected
// components those cells touch and reuses the previous solution everywhere
// else — the rest of the design does not move at all, and the request costs
// a small fraction of a from-scratch legalization.
//
//   ./eco_incremental [num-cells] [eco-cells]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "eval/metrics.h"
#include "gen/generator.h"
#include "legal/flow.h"
#include "service/session.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace mch;
  const std::size_t num_cells =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 5000;
  const std::size_t eco_cells =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 25;

  gen::GeneratorOptions options;
  options.seed = 11;
  db::Design design = gen::generate_random_design(
      num_cells - num_cells / 10, num_cells / 10, 0.7, options);

  // The session owns its copy of the design from here on.
  service::LegalizationSession session(std::move(design));

  // Initial legalization.
  const service::SessionResult first = session.full_legalize();
  std::printf("initial legalization: %s in %.3fs, %zu components\n",
              first.legal ? "legal" : "ILLEGAL", first.seconds,
              first.session.components_total);

  // ECO baseline: the legal result becomes the new GP (so stability is
  // measured against it), and the session re-solves once to make its
  // resident state describe the committed placement.
  session.commit_legal_as_gp();
  session.full_legalize();

  // ECO: a few cells are disturbed (as if resized/re-routed and nudged by
  // an ECO tool). EcoOp::move routes through db::Design::move_cell, which
  // clamps the target into the die on *all four* boundaries — a cell nudged
  // past the right or top edge lands flush against it instead of outside.
  const db::Chip& chip = session.design().chip();
  Rng rng(99);
  std::vector<service::EcoOp> ops;
  while (ops.size() < eco_cells) {
    const auto id = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(session.design().num_cells()) - 1));
    const db::Cell& cell = session.design().cells()[id];
    if (cell.fixed) continue;
    ops.push_back(service::EcoOp::move(
        id, cell.gp_x + rng.normal(0.0, 6.0 * chip.site_width),
        cell.gp_y + rng.normal(0.0, 0.8 * chip.row_height)));
  }
  std::printf("ECO perturbs %zu cells\n", ops.size());

  // From-scratch reference on the same post-ECO state: copy the design,
  // apply the same moves, run the one-shot flow.
  db::Design scratch = session.design();
  for (const service::EcoOp& op : ops)
    scratch.move_cell(op.cell, op.gp_x, op.gp_y);
  Timer scratch_timer;
  const legal::FlowResult reference = legal::legalize(scratch);
  const double scratch_seconds = scratch_timer.seconds();

  // Incremental re-legalization through the session.
  const service::SessionResult second = session.eco(std::move(ops));
  std::printf("incremental ECO: %s in %.4fs — %zu of %zu components dirty, "
              "%zu reused, %zu warm starts\n",
              second.legal ? "legal" : "ILLEGAL", second.seconds,
              second.session.components_dirty,
              second.session.components_total,
              second.session.components_reused,
              second.session.warm_start_hits);
  std::printf("from-scratch reference: %s in %.3fs — session speedup %.1fx\n",
              reference.legal ? "legal" : "ILLEGAL", scratch_seconds,
              second.seconds > 0.0 ? scratch_seconds / second.seconds : 0.0);

  const eval::DisplacementStats disp = eval::displacement(session.design());
  const std::size_t moved = disp.moved_cells;
  std::printf("cells that moved: %zu of %zu (%.2f%%) — stability: the "
              "disturbance stays local\n",
              moved, session.design().num_cells(),
              100.0 * static_cast<double>(moved) /
                  static_cast<double>(session.design().num_cells()));
  std::printf("total re-legalization displacement: %.1f sites (mean over "
              "moved cells %.2f)\n",
              disp.total_sites,
              moved ? disp.total_sites / static_cast<double>(moved) : 0.0);
  return second.legal && reference.legal ? 0 : 1;
}
