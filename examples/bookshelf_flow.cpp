// End-to-end workflow on Bookshelf (ISPD contest format) inputs — the
// paper's exact benchmark-preparation pipeline:
//
//   1. load a Bookshelf .aux bundle (e.g. an original ISPD-2015 design, or
//      the bundle this example writes for you as a demo),
//   2. apply the paper's modification — double the height and halve the
//      width of 10% of the cells (gen::make_mixed_height),
//   3. legalize with the MMSIM flow,
//   4. write the result back as a Bookshelf .pl.
//
//   ./bookshelf_flow                 # self-contained demo bundle
//   ./bookshelf_flow design.aux      # your own Bookshelf design
//   ./bookshelf_flow design.aux 0.1  # custom doubling fraction
#include <cstdio>
#include <cstdlib>
#include <string>

#include "eval/metrics.h"
#include "gen/generator.h"
#include "gen/transform.h"
#include "io/bookshelf.h"
#include "legal/flow.h"

int main(int argc, char** argv) {
  using namespace mch;
  std::string aux_path;
  const double fraction = argc > 2 ? std::atof(argv[2]) : 0.10;

  if (argc > 1) {
    aux_path = argv[1];
  } else {
    // No input given: synthesize a single-height design and write it out
    // as a Bookshelf bundle, then consume it like any external design.
    gen::GeneratorOptions options;
    options.seed = 7;
    options.row_height = 9.0;
    db::Design demo = gen::generate_random_design(4000, 0, 0.55, options);
    demo.name = "demo";
    io::save_bookshelf("/tmp", "demo", demo);
    aux_path = "/tmp/demo.aux";
    std::printf("wrote demo Bookshelf bundle to /tmp/demo.{aux,nodes,nets,"
                "pl,scl,wts}\n");
  }

  db::Design design = io::load_bookshelf(aux_path);
  std::printf("loaded %s: %zu cells (%zu fixed), %zu nets, %zu rows x %zu "
              "sites\n",
              design.name.c_str(), design.num_cells(),
              design.num_fixed_cells(), design.num_nets(),
              design.chip().num_rows, design.chip().num_sites);

  const gen::MixedHeightTransformStats transform =
      gen::make_mixed_height(design, fraction, /*seed=*/2017);
  std::printf("doubled %zu cells (%.0f%%); total area %.0f -> %.0f\n",
              transform.converted_cells, fraction * 100.0,
              transform.area_before, transform.area_after);

  const legal::FlowResult result = legal::legalize(design);
  const eval::DisplacementStats disp = eval::displacement(design);
  std::printf("legalized: %s, displacement %.1f sites (mean %.2f), "
              "dHPWL %.3f%%, %.2fs\n",
              result.legal ? "LEGAL" : "ILLEGAL", disp.total_sites,
              disp.mean_sites, eval::delta_hpwl_fraction(design) * 100.0,
              result.total_seconds);

  const std::string out = design.name + "_legal.pl";
  io::save_bookshelf_pl(out, design);
  std::printf("wrote %s\n", out.c_str());
  return result.legal ? 0 : 1;
}
