// End-to-end tests of the full legalization flow (paper Fig. 4).
#include "legal/flow.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "gen/generator.h"

namespace mch::legal {
namespace {

db::Design suite_design(const char* name, double scale, std::uint64_t seed) {
  gen::GeneratorOptions opts;
  opts.scale = scale;
  opts.seed = seed;
  return gen::generate_design(gen::find_spec(name), opts);
}

TEST(FlowTest, LegalizesMixedDesign) {
  db::Design design = suite_design("fft_2", 0.02, 1);
  const FlowResult result = legalize(design);
  EXPECT_TRUE(result.legal) << result.legality.summary();
  EXPECT_TRUE(result.solver.converged);
  EXPECT_EQ(result.allocation.unplaced_cells, 0u);
  EXPECT_GT(result.total_seconds, 0.0);
}

TEST(FlowTest, DisplacementIsReasonable) {
  db::Design design = suite_design("fft_2", 0.02, 2);
  const FlowResult result = legalize(design);
  ASSERT_TRUE(result.legal);
  const eval::DisplacementStats disp = eval::displacement(design);
  // Near-legal GP input: a few sites per cell on average.
  EXPECT_LT(disp.mean_sites, 10.0);
  EXPECT_GT(disp.total_sites, 0.0);
}

TEST(FlowTest, HighDensityStillLegal) {
  db::Design design = suite_design("des_perf_1", 0.01, 3);
  const FlowResult result = legalize(design);
  EXPECT_TRUE(result.legal) << result.legality.summary();
}

TEST(FlowTest, LowDensityHasNoIllegalCellsAfterMmsim) {
  db::Design design = suite_design("pci_bridge32_b", 0.02, 4);
  const FlowResult result = legalize(design);
  ASSERT_TRUE(result.legal);
  // Paper Table 1: sparse designs have zero illegal cells after MMSIM.
  EXPECT_EQ(result.allocation.illegal_cells, 0u);
}

TEST(FlowTest, VerifyCanBeDisabled) {
  db::Design design = suite_design("fft_a", 0.02, 5);
  FlowOptions options;
  options.verify = false;
  const FlowResult result = legalize(design, options);
  EXPECT_FALSE(result.legal);  // not computed
  EXPECT_EQ(result.legality.total_violations, 0u);
}

TEST(FlowTest, DeterministicAcrossRuns) {
  db::Design a = suite_design("fft_b", 0.02, 6);
  db::Design b = suite_design("fft_b", 0.02, 6);
  legalize(a);
  legalize(b);
  for (std::size_t i = 0; i < a.num_cells(); ++i) {
    EXPECT_DOUBLE_EQ(a.cells()[i].x, b.cells()[i].x);
    EXPECT_DOUBLE_EQ(a.cells()[i].y, b.cells()[i].y);
  }
}

TEST(FlowTest, WorksOnTripleAndQuadHeights) {
  // Paper extension: the formulation covers any row height; exercise it.
  gen::GeneratorOptions opts;
  opts.seed = 7;
  opts.triple_fraction = 0.05;
  opts.quad_fraction = 0.03;
  db::Design design = gen::generate_random_design(800, 80, 0.55, opts);
  const FlowResult result = legalize(design);
  EXPECT_TRUE(result.legal) << result.legality.summary();
  EXPECT_TRUE(result.solver.converged);
}

TEST(FlowTest, EmptyRowsTolerated) {
  // A tiny design on a big chip: most rows are empty.
  gen::GeneratorOptions opts;
  opts.seed = 8;
  db::Design design = gen::generate_random_design(10, 2, 0.05, opts);
  const FlowResult result = legalize(design);
  EXPECT_TRUE(result.legal) << result.legality.summary();
}

TEST(FlowTest, HpwlIncreaseSmall) {
  db::Design design = suite_design("fft_2", 0.02, 9);
  legalize(design);
  // Paper Table 2: ΔHPWL well under 1% on fft_2-like densities.
  EXPECT_LT(eval::delta_hpwl_fraction(design), 0.02);
}

TEST(FlowTest, RelegalizingALegalPlacementIsAlmostFree) {
  db::Design design = suite_design("fft_a", 0.02, 10);
  legalize(design);
  design.commit_positions_as_gp();  // legal placement becomes the new GP
  const FlowResult second = legalize(design);
  ASSERT_TRUE(second.legal);
  const eval::DisplacementStats disp = eval::displacement(design);
  EXPECT_LT(disp.total_sites, 1.0);  // nothing should move
  EXPECT_EQ(second.allocation.illegal_cells, 0u);
}

}  // namespace
}  // namespace mch::legal
