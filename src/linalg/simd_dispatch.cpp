// Baseline-ISA dispatch for the linalg SIMD kernel tables. Lives in its own
// TU (compiled without -m flags) so the function-pointer tables can be
// handed out safely on any CPU: the per-ISA TUs are only ever *called*
// through pointers obtained here, after simd.cpp's runtime CPU check
// clamped the active level.
#include "linalg/simd_kernels.h"

namespace mch::linalg::kernels {

const CsrSimdKernels* csr_simd_kernels(SimdLevel level) {
#if defined(MCH_SIMD_X86)
  switch (level) {
    case SimdLevel::kAvx512: return &kCsrSimdAvx512;
    case SimdLevel::kAvx2: return &kCsrSimdAvx2;
    case SimdLevel::kScalar: break;
  }
#else
  (void)level;
#endif
  return nullptr;
}

}  // namespace mch::linalg::kernels
