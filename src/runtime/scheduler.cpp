#include "runtime/scheduler.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/log.h"

namespace mch::runtime {

namespace {

/// Which scheduler (if any) the calling thread is a worker of. Decides
/// where a nested submission's tickets land: the worker's own deque
/// (stealable children) vs. the global injection queue.
struct WorkerIdentity {
  Scheduler* owner = nullptr;
  unsigned index = 0;
};
thread_local WorkerIdentity t_worker;

/// True while the calling thread executes a chunk body. Saved/restored by
/// ExecuteScope rather than cleared, because nested jobs re-enter
/// execute_chunk on the same thread.
thread_local bool t_in_task = false;

struct ExecuteScope {
  bool previous;
  ExecuteScope() : previous(t_in_task) { t_in_task = true; }
  ~ExecuteScope() { t_in_task = previous; }
};

/// Pool ids and log worker ids are process-wide counters so two pools in
/// one process (the global Runtime's plus ad-hoc test pools) never hand
/// out colliding worker identities.
std::atomic<unsigned> g_next_pool_id{0};
std::atomic<int> g_next_log_worker_id{1};

bool env_flag(const char* name, bool default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return default_value;
  return !(value[0] == '0' && value[1] == '\0');
}

/// Knob cells: -1 = unresolved (read the environment on first use),
/// otherwise 0/1. Setters overwrite, so tests can flip them after start.
std::atomic<int> g_nested_scheduling{-1};
std::atomic<int> g_steal_first{-1};
std::atomic<int> g_staging{-1};

bool resolve_flag(std::atomic<int>& cell, const char* env_name,
                  bool default_value) {
  int value = cell.load(std::memory_order_relaxed);
  if (value < 0) {
    value = env_flag(env_name, default_value) ? 1 : 0;
    cell.store(value, std::memory_order_relaxed);
  }
  return value != 0;
}

}  // namespace

/// One top-level or nested submission. Stack-allocated in run(); the
/// combined `remaining` count (chunks + issued tickets) guarantees a
/// unique zeroing thread, which marks `done` under `mu` — so nobody can
/// touch a Job after the submitter's wait returns and the frame dies.
struct Scheduler::Job {
  const std::function<void(std::size_t)>* task = nullptr;
  std::size_t chunks = 0;
  /// Claim cursor: every executor (submitter, ticket holders) fetch_adds
  /// until it reads >= chunks. Assignment is dynamic; results don't
  /// depend on it (see the determinism contract in scheduler.h).
  std::atomic<std::size_t> cursor{0};
  /// chunks + issued tickets. Each finished chunk and each retired ticket
  /// (drained or cancelled) subtracts one; the thread that zeroes it is
  /// unique and completes the job. An executor's own outstanding ticket
  /// keeps the count positive while it runs, so its chunk-finishes can
  /// never free the job out from under it.
  std::atomic<std::size_t> remaining{0};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;             ///< guarded by mu
  std::exception_ptr error;      ///< guarded by mu; first chunk failure
};

bool Scheduler::in_task() { return t_in_task; }

int Scheduler::current_worker_index() const {
  return t_worker.owner == this ? static_cast<int>(t_worker.index) : -1;
}

bool Scheduler::nested_scheduling_enabled() {
  return resolve_flag(g_nested_scheduling, "MCH_SCHED_NESTED", true);
}

void Scheduler::set_nested_scheduling(bool enabled) {
  g_nested_scheduling.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool Scheduler::steal_first() {
  return resolve_flag(g_steal_first, "MCH_SCHED_STEAL_FIRST", false);
}

void Scheduler::set_steal_first(bool enabled) {
  g_steal_first.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool Scheduler::staging_enabled() {
  return resolve_flag(g_staging, "MCH_SCHED_STAGING", true);
}

void Scheduler::set_staging(bool enabled) {
  g_staging.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void Scheduler::reset_knobs() {
  g_nested_scheduling.store(-1, std::memory_order_relaxed);
  g_steal_first.store(-1, std::memory_order_relaxed);
  g_staging.store(-1, std::memory_order_relaxed);
}

void Scheduler::note_nested_inline(std::size_t chunks) {
  static obs::Counter& inline_chunks = obs::counter("sched.nested_inline");
  inline_chunks.add(static_cast<std::uint64_t>(chunks));
}

Scheduler::Scheduler(unsigned thread_count)
    : pool_id_(g_next_pool_id.fetch_add(1, std::memory_order_relaxed)) {
  MCH_CHECK_MSG(thread_count >= 1, "scheduler needs at least one thread");
  const unsigned worker_count = thread_count - 1;
  queues_.reserve(worker_count);
  for (unsigned i = 0; i < worker_count; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(worker_count);
  for (unsigned i = 0; i < worker_count; ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    shutdown_ = true;
  }
  sleep_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void Scheduler::execute_chunk(Job& job, std::size_t chunk) {
  ExecuteScope scope;
  try {
    (*job.task)(chunk);
  } catch (...) {
    std::lock_guard<std::mutex> lock(job.mu);
    if (!job.error) job.error = std::current_exception();
  }
}

void Scheduler::finish(Job& job, std::size_t n) {
  if (n == 0) return;
  // acq_rel chains every executor's writes into the zeroer, and the mutex
  // hands them on to the waiting submitter. Notify under the lock: the
  // submitter's frame owns the Job, so the cv must not be touched after
  // `done` becomes visible outside the critical section.
  if (job.remaining.fetch_sub(n, std::memory_order_acq_rel) == n) {
    std::lock_guard<std::mutex> lock(job.mu);
    job.done = true;
    job.cv.notify_all();
  }
}

std::size_t Scheduler::drain(Job& job) {
  std::size_t executed = 0;
  for (;;) {
    const std::size_t chunk =
        job.cursor.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job.chunks) break;
    execute_chunk(job, chunk);
    finish(job, 1);
    ++executed;
  }
  return executed;
}

void Scheduler::push_tickets(Job* job, std::size_t count, int home) {
  if (home >= 0) {
    WorkerQueue& queue = *queues_[static_cast<std::size_t>(home)];
    std::lock_guard<std::mutex> lock(queue.mutex);
    for (std::size_t i = 0; i < count; ++i) queue.tickets.push_back(job);
  } else {
    std::lock_guard<std::mutex> lock(injection_mutex_);
    for (std::size_t i = 0; i < count; ++i) injection_.push_back(job);
  }
  wake_workers();
}

void Scheduler::cancel_tickets(Job* job) {
  std::size_t removed = 0;
  const auto strip = [&removed, job](std::deque<Job*>& tickets) {
    const auto keep_end = std::remove(tickets.begin(), tickets.end(), job);
    removed += static_cast<std::size_t>(tickets.end() - keep_end);
    tickets.erase(keep_end, tickets.end());
  };
  {
    std::lock_guard<std::mutex> lock(injection_mutex_);
    strip(injection_);
  }
  for (const std::unique_ptr<WorkerQueue>& queue : queues_) {
    std::lock_guard<std::mutex> lock(queue->mutex);
    strip(queue->tickets);
  }
  finish(*job, removed);
}

void Scheduler::wake_workers() {
  // seq_cst Dekker pairing with the sleep path: either the sleeper's
  // epoch re-check (after raising sleepers_) sees this bump, or this
  // sleepers_ load sees the sleeper and takes the lock to notify. Taking
  // sleep_mutex_ before notifying closes the window between a sleeper's
  // failed predicate check and its atomic release-and-block.
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    sleep_cv_.notify_all();
  }
}

bool Scheduler::acquire_ticket(unsigned self, Job*& job, bool& stolen) {
  stolen = false;
  const auto pop_own = [&]() {
    WorkerQueue& queue = *queues_[self];
    std::lock_guard<std::mutex> lock(queue.mutex);
    if (queue.tickets.empty()) return false;
    job = queue.tickets.back();
    queue.tickets.pop_back();
    return true;
  };
  const auto pop_injected = [&]() {
    std::lock_guard<std::mutex> lock(injection_mutex_);
    if (injection_.empty()) return false;
    job = injection_.front();
    injection_.pop_front();
    return true;
  };
  const auto steal = [&]() {
    const std::size_t n = queues_.size();
    for (std::size_t offset = 1; offset < n; ++offset) {
      WorkerQueue& queue = *queues_[(self + offset) % n];
      std::lock_guard<std::mutex> lock(queue.mutex);
      if (queue.tickets.empty()) continue;
      job = queue.tickets.front();
      queue.tickets.pop_front();
      stolen = true;
      return true;
    }
    return false;
  };
  if (steal_first()) return steal() || pop_injected() || pop_own();
  return pop_own() || pop_injected() || steal();
}

void Scheduler::worker_main(unsigned index) {
  set_log_worker_id(g_next_log_worker_id.fetch_add(
      1, std::memory_order_relaxed));
  obs::set_trace_thread_name("worker-" + std::to_string(pool_id_) + "." +
                             std::to_string(index));
  t_worker = WorkerIdentity{this, index};
  for (;;) {
    const std::uint64_t epoch = epoch_.load(std::memory_order_seq_cst);
    Job* job = nullptr;
    bool stolen = false;
    if (acquire_ticket(index, job, stolen)) {
      if (stolen) {
        static obs::Counter& steals = obs::counter("sched.steals");
        steals.add();
      }
      {
        // One busy span per ticket (not per chunk): bounded event volume
        // even when a job has thousands of fine-grained chunks.
        obs::TraceSpan busy("pool.worker.busy");
        busy.arg("chunks", drain(*job));
      }
      // Retire the ticket last; the Job may die the moment this lands.
      finish(*job, 1);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (shutdown_) return;
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    sleep_cv_.wait(lock, [&] {
      return shutdown_ || epoch_.load(std::memory_order_seq_cst) != epoch;
    });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    if (shutdown_) return;
  }
}

void Scheduler::run(std::size_t chunks,
                    const std::function<void(std::size_t)>& task) {
  if (chunks == 0) return;

  const bool nested = t_in_task;
  const int home =
      t_worker.owner == this ? static_cast<int>(t_worker.index) : -1;

  Job job;
  job.task = &task;
  job.chunks = chunks;
  // One ticket per worker the job could use; the submitter participates
  // unticketed, so chunks-1 is the most company it can ever need.
  const std::size_t tickets =
      std::min<std::size_t>(chunks - 1, workers_.size());
  job.remaining.store(chunks + tickets, std::memory_order_relaxed);

  if (nested) {
    static obs::Counter& nested_jobs = obs::counter("sched.nested_jobs");
    nested_jobs.add();
  } else {
    static obs::Counter& jobs = obs::counter("sched.jobs");
    jobs.add();
    static obs::Histogram& queue_depth = obs::histogram("sched.queue_depth");
    queue_depth.observe(static_cast<double>(
        active_jobs_.fetch_add(1, std::memory_order_relaxed) + 1));
  }

  if (tickets > 0) push_tickets(&job, tickets, home);

  // The submitter is one of the job's threads: drain the cursor like any
  // ticket holder would.
  drain(job);

  // Every chunk is claimed; tickets no worker took yet are dead weight —
  // claw them back so the job completes without waiting on a busy pool.
  if (tickets > 0) cancel_tickets(&job);

  {
    std::unique_lock<std::mutex> lock(job.mu);
    job.cv.wait(lock, [&] { return job.done; });
  }
  if (!nested) active_jobs_.fetch_sub(1, std::memory_order_relaxed);
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace mch::runtime
