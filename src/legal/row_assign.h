// Row assignment — step 1 of the paper's flow (Fig. 4).
//
// Every cell is snapped to its *nearest correct row*: the nearest row for an
// odd-height cell (vertical flipping makes every row correct), the nearest
// rail-matching row for an even-height cell. Assigning nearest correct rows
// makes the total y-displacement minimal by construction (paper §3), after
// which legalization reduces to the x-only problem (5).
#pragma once

#include <cstddef>
#include <vector>

#include "db/design.h"
#include "util/index.h"

namespace mch::legal {

/// Base row (bottom occupied row index) chosen for each cell. Stored as
/// index_t: the array is indexed by cell id and rides along with every
/// model/session snapshot, so its footprint tracks the design size.
using RowAssignment = std::vector<index_t>;

/// Computes the nearest correct row for every cell and writes the resulting
/// y coordinate into the design (x is left untouched).
RowAssignment assign_rows(db::Design& design);

/// Computes the assignment without mutating the design.
RowAssignment compute_row_assignment(const db::Design& design);

/// Derives each cell's vertical orientation from its final row: an
/// odd-height cell whose designed bottom rail differs from its row's rail
/// is flipped (paper Fig. 1); even-height cells are rail-matched by
/// construction and never flip. Requires row-aligned y positions; fixed
/// cells are untouched. Returns the number of flipped cells.
std::size_t assign_orientations(db::Design& design);

}  // namespace mch::legal
