// mchlegal — command-line mixed-cell-height legalizer.
//
//   mchlegal <input> [options]
//
// Input formats (by extension):
//   .aux         Bookshelf bundle (ISPD contest format)
//   .mchdesign   this library's native design format
//
// Options:
//   --algo <mmsim|tetris|local|local-imp|mixed-abacus>   (default mmsim)
//   --double <fraction>   apply the paper's mixed-height transform first
//   --dp                  run detailed placement after legalization
//   --out <path>          write result (.pl for .aux inputs, .mchdesign
//                         otherwise; default <input-stem>_legal.<ext>)
//   --svg <path>          write an SVG layout plot
//   --lambda <v>          subcell penalty λ            (default 1000)
//   --beta <v> --theta <v>  MMSIM splitting parameters (default 0.5/0.5)
//   --tolerance <v>       MMSIM stop tolerance         (default 1e-4)
//   --partition <off|match|tiered>  constraint-graph decomposition mode
//                         (default: MCH_PARTITION env, else match)
//   --simd <auto|avx512|avx2|off>   SIMD kernel level (default: MCH_SIMD
//                         env, else auto = highest the CPU supports; the
//                         double kernels are bitwise identical at every
//                         level, so this is a perf knob, not a result knob)
//   --precision <double|mixed>      MMSIM iterate precision (default:
//                         MCH_PRECISION env, else double; mixed engages
//                         only under --partition tiered)
//   --seed <n>            seed for --double            (default 1)
//   --threads <n>         worker threads (0 = auto; also MCH_THREADS)
//   --trace <path>        write a Chrome trace-event JSON of the run (open
//                         in chrome://tracing or https://ui.perfetto.dev;
//                         also MCH_TRACE=<path>)
//   --metrics <path>      write the metrics-registry JSON snapshot
//                         (counters/gauges/latency histograms; also
//                         MCH_METRICS=<path>)
//   --quiet               suppress the report
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "db/legality.h"
#include "dp/detailed.h"
#include "eval/suite_runner.h"
#include "gen/transform.h"
#include "io/bookshelf.h"
#include "io/design_io.h"
#include "io/svg.h"
#include "linalg/simd.h"
#include "obs/obs.h"
#include "runtime/options.h"
#include "util/log.h"

namespace {

[[noreturn]] void usage_error(const char* message) {
  std::fprintf(stderr, "error: %s\nrun with no arguments for usage\n",
               message);
  std::exit(2);
}

bool ends_with(const std::string& value, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return value.size() >= n &&
         value.compare(value.size() - n, n, suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mch;
  if (argc < 2) {
    std::printf("usage: mchlegal <input.aux|input.mchdesign> [options]\n"
                "see the header of tools/mchlegal.cpp for the option list\n");
    return 0;
  }

  runtime::configure_threads_from_cli(argc, argv);
  // The recovery/kernels report lines below go through the leveled logger at
  // kInfo; raise the default level so they still print, without overriding
  // an explicit MCH_LOG_LEVEL.
  if (std::getenv("MCH_LOG_LEVEL") == nullptr)
    set_log_level(LogLevel::kInfo);
  const std::string input = argv[1];
  std::string algo = "mmsim";
  std::string out_path;
  std::string svg_path;
  double double_fraction = 0.0;
  bool run_dp = false;
  bool quiet = false;
  std::uint64_t seed = 1;
  legal::FlowOptions flow_options;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--algo") algo = value();
    else if (arg == "--out") out_path = value();
    else if (arg == "--svg") svg_path = value();
    else if (arg == "--double") double_fraction = std::atof(value().c_str());
    else if (arg == "--dp") run_dp = true;
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--seed") seed = std::strtoull(value().c_str(), nullptr, 10);
    else if (arg == "--threads") value();  // consumed by the runtime above
    else if (arg.rfind("--threads=", 0) == 0) {}  // ditto, inline form
    else if (arg == "--trace") obs::set_trace_path(value());
    else if (arg == "--metrics") obs::set_metrics_path(value());
    else if (arg == "--lambda")
      flow_options.solver.model.lambda = std::atof(value().c_str());
    else if (arg == "--beta")
      flow_options.solver.mmsim.beta = std::atof(value().c_str());
    else if (arg == "--theta")
      flow_options.solver.mmsim.theta = std::atof(value().c_str());
    else if (arg == "--tolerance")
      flow_options.solver.mmsim.tolerance = std::atof(value().c_str());
    else if (arg == "--partition") {
      const std::string mode = value();
      if (mode == "off")
        flow_options.solver.partition = legal::PartitionMode::kOff;
      else if (mode == "match")
        flow_options.solver.partition = legal::PartitionMode::kMatch;
      else if (mode == "tiered")
        flow_options.solver.partition = legal::PartitionMode::kTiered;
      else
        usage_error("unknown --partition mode (off|match|tiered)");
    } else if (arg == "--simd") {
      const std::string level = value();
      if (level == "off" || level == "scalar" || level == "0")
        linalg::set_simd_level(linalg::SimdLevel::kScalar);
      else if (level == "avx2")
        linalg::set_simd_level(linalg::SimdLevel::kAvx2);
      else if (level == "avx512")
        linalg::set_simd_level(linalg::SimdLevel::kAvx512);
      else if (level == "auto")
        linalg::set_simd_level(linalg::simd_level_supported());
      else
        usage_error("unknown --simd level (auto|avx512|avx2|off)");
    } else if (arg == "--precision") {
      const std::string prec = value();
      if (prec == "double")
        flow_options.solver.mmsim.precision = lcp::MmsimPrecision::kDouble;
      else if (prec == "mixed")
        flow_options.solver.mmsim.precision = lcp::MmsimPrecision::kMixed;
      else
        usage_error("unknown --precision (double|mixed)");
    } else
      usage_error(("unknown option " + arg).c_str());
  }

  // Load.
  const bool bookshelf = ends_with(input, ".aux");
  db::Design design;
  try {
    design = bookshelf ? io::load_bookshelf(input) : io::load_design(input);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "failed to load %s: %s\n", input.c_str(), e.what());
    return 1;
  }
  if (!quiet)
    std::printf("loaded %s: %zu cells (%zu fixed), %zu nets\n",
                design.name.c_str(), design.num_cells(),
                design.num_fixed_cells(), design.num_nets());

  if (double_fraction > 0.0) {
    const gen::MixedHeightTransformStats t =
        gen::make_mixed_height(design, double_fraction, seed);
    if (!quiet)
      std::printf("doubled %zu cells (%.0f%%)\n", t.converted_cells,
                  double_fraction * 100.0);
  }

  // Legalize.
  eval::Legalizer which;
  if (algo == "mmsim") which = eval::Legalizer::kMmsim;
  else if (algo == "tetris") which = eval::Legalizer::kTetris;
  else if (algo == "local") which = eval::Legalizer::kLocalBase;
  else if (algo == "local-imp") which = eval::Legalizer::kLocalImproved;
  else if (algo == "mixed-abacus") which = eval::Legalizer::kMixedAbacus;
  else usage_error("unknown --algo");

  eval::RunResult result;
  try {
    result = eval::run_legalizer(design, which, flow_options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "legalization failed: %s\n", e.what());
    return 1;
  }

  dp::DetailedPlacementStats dp_stats;
  if (run_dp) dp_stats = dp::refine(design);

  if (!quiet) {
    std::printf("algorithm:           %s\n", eval::to_string(which));
    std::printf("legal:               %s\n",
                result.legal ? "yes" : result.legality_summary.c_str());
    std::printf("total displacement:  %.1f sites (mean %.3f)\n",
                result.disp.total_sites, result.disp.mean_sites);
    std::printf("delta HPWL:          %.4f%%\n", result.delta_hpwl * 100.0);
    std::printf("runtime:             %.3f s\n", result.seconds);
    std::printf("peak RSS:            %.1f MB\n", result.peak_rss_mb);
    if (which == eval::Legalizer::kMmsim) {
      std::printf("solver:              %zu iterations%s, %zu illegal "
                  "cells fixed by allocation\n",
                  result.solver_iterations,
                  result.solver_converged ? "" : " (NOT converged)",
                  result.illegal_after_solver);
      if (result.solver_components > 0)
        std::printf("decomposition:       %zu components (largest %zu), "
                    "%zu component iterations\n",
                    result.solver_components, result.solver_max_component,
                    result.solver_component_iterations);
      if (result.solver_recovery.attempted() || !result.solver_converged) {
        const legal::RecoveryStats& rec = result.solver_recovery;
        MCH_LOG(kInfo) << "recovery: " << rec.escalations
                       << " escalation(s), " << rec.component_ladders
                       << " component ladder(s) (" << rec.ladder_attempts
                       << " attempts), " << rec.recovered_components
                       << " recovered, " << rec.clamped_components
                       << " clamped component(s) / " << rec.clamped_cells
                       << " cell(s); audit "
                       << (!rec.audit_ran    ? "not run"
                           : rec.audit_legal ? "legal"
                                             : rec.audit_summary.c_str());
        for (const legal::SolveFailure& failure : rec.failures)
          MCH_LOG(kInfo) << "recovery failure: " << failure.summary();
      }
      if (result.solver_phase.total() > 0.0)
        std::printf("solver phases:       kernel %.2f ms, spmv %.2f ms, "
                    "thomas %.2f ms, reduction %.2f ms, mixed %.2f ms "
                    "(solve %.2f ms)\n",
                    result.solver_phase.kernel_seconds * 1e3,
                    result.solver_phase.spmv_seconds * 1e3,
                    result.solver_phase.thomas_seconds * 1e3,
                    result.solver_phase.reduction_seconds * 1e3,
                    result.solver_phase.mixed_seconds * 1e3,
                    result.solver_solve_seconds * 1e3);
      MCH_LOG(kInfo) << "kernels: simd "
                     << linalg::simd_level_name(result.solver_simd)
                     << ", precision "
                     << (result.solver_precision ==
                                 lcp::MmsimPrecision::kMixed
                             ? "mixed"
                             : "double")
                     << " (" << result.solver_mixed_iterations
                     << " mixed iterations)";
    }
    if (run_dp)
      std::printf("detailed placement:  HPWL %.0f -> %.0f (%.3f%%), "
                  "%zu moves\n",
                  dp_stats.hpwl_before, dp_stats.hpwl_after,
                  dp_stats.improvement_fraction() * 100.0,
                  dp_stats.reorder_moves + dp_stats.swap_moves +
                      dp_stats.shift_moves);
  }

  // Write outputs.
  if (out_path.empty()) {
    const std::size_t dot = input.find_last_of('.');
    out_path = input.substr(0, dot) + "_legal" +
               (bookshelf ? ".pl" : ".mchdesign");
  }
  try {
    if (bookshelf)
      io::save_bookshelf_pl(out_path, design);
    else
      io::save_design(out_path, design);
    if (!quiet) std::printf("wrote %s\n", out_path.c_str());
    if (!svg_path.empty()) {
      io::SvgOptions svg;
      svg.pixels_per_unit = 1200.0 / design.chip().width();
      io::save_svg(svg_path, design, svg);
      if (!quiet) std::printf("wrote %s\n", svg_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "failed to write output: %s\n", e.what());
    return 1;
  }

  obs::set_metrics_attribute("tool", "mchlegal");
  obs::set_metrics_attribute("design", design.name);
  obs::set_metrics_attribute("algo", eval::to_string(which));
  obs::set_metrics_attribute(
      "simd", linalg::simd_level_name(linalg::simd_level()));
  obs::flush_artifacts();
  return result.legal ? 0 : 1;
}
