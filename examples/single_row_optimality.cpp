// Demonstrates the §5.3 equivalence on a single benchmark: on designs with
// only single-row-height cells, the MMSIM flow and the Abacus-PlaceRow flow
// produce identical total displacement — both solve the relaxed fixed-order
// problem exactly.
//
//   ./single_row_optimality [num-cells] [density]
#include <cstdio>
#include <cstdlib>

#include "baselines/abacus.h"
#include "db/legality.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "legal/flow.h"
#include "legal/tetris_alloc.h"

int main(int argc, char** argv) {
  using namespace mch;
  const std::size_t num_cells =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 5000;
  const double density = argc > 2 ? std::atof(argv[2]) : 0.7;

  gen::GeneratorOptions options;
  options.seed = 2026;
  db::Design mmsim_design =
      gen::generate_random_design(num_cells, 0, density, options);
  db::Design placerow_design = mmsim_design;

  std::printf("single-height design: %zu cells, density %.2f\n", num_cells,
              density);

  legal::FlowOptions flow_options;
  flow_options.solver.mmsim.tolerance = 1e-8;
  flow_options.solver.mmsim.max_iterations = 300000;
  const legal::FlowResult flow = legal::legalize(mmsim_design, flow_options);
  std::printf("MMSIM flow:    %s, %zu iterations, legal: %s\n",
              flow.solver.converged ? "converged" : "NOT converged",
              flow.solver.iterations, flow.legal ? "yes" : "no");

  baselines::placerow_legalize_fixed_rows(placerow_design,
                                          /*clamp_right_boundary=*/false);
  legal::tetris_allocate(placerow_design);
  const bool placerow_legal = db::check_legality(placerow_design).legal();
  std::printf("PlaceRow flow: exact cluster collapse, legal: %s\n",
              placerow_legal ? "yes" : "no");

  const double mmsim_disp = eval::displacement(mmsim_design).total_sites;
  const double placerow_disp =
      eval::displacement(placerow_design).total_sites;
  std::printf("\ntotal displacement: MMSIM %.2f vs PlaceRow %.2f sites\n",
              mmsim_disp, placerow_disp);

  const bool equal =
      std::abs(mmsim_disp - placerow_disp) < 1e-3 * placerow_disp + 1e-6;
  std::printf(equal ? "IDENTICAL — the iterative MMSIM reaches the exact "
                      "optimum (Theorem 2).\n"
                    : "MISMATCH — this would falsify Theorem 2!\n");
  return equal && flow.legal && placerow_legal ? 0 : 1;
}
