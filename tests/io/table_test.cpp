#include "io/table.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace mch::io {
namespace {

Table sample_table() {
  Table t({"name", "count", "ratio"});
  t.row().cell("alpha").cell(std::size_t{42}).cell(0.125, 3);
  t.row().cell("beta").cell(std::size_t{7}).percent(0.0123);
  return t;
}

TEST(TableTest, TextAlignsColumns) {
  const std::string text = sample_table().to_text();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("0.125"), std::string::npos);
  EXPECT_NE(text.find("1.23%"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(TableTest, MarkdownShape) {
  const std::string md = sample_table().to_markdown();
  EXPECT_EQ(md.rfind("| name | count | ratio |", 0), 0u);
  EXPECT_NE(md.find("|---|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| alpha | 42 | 0.125 |"), std::string::npos);
}

TEST(TableTest, CsvEscaping) {
  Table t({"a", "b"});
  t.row().cell("has,comma").cell("has\"quote");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TableTest, NumRows) {
  EXPECT_EQ(sample_table().num_rows(), 2u);
  Table empty({"x"});
  EXPECT_EQ(empty.num_rows(), 0u);
}

TEST(TableTest, CellBeforeRowThrows) {
  Table t({"x"});
  EXPECT_THROW(t.cell("v"), CheckError);
}

TEST(TableTest, OverfullRowThrows) {
  Table t({"x"});
  t.row().cell("a");
  EXPECT_THROW(t.cell("b"), CheckError);
}

TEST(TableTest, IncompleteRowDetectedOnNextRow) {
  Table t({"x", "y"});
  t.row().cell("a");
  EXPECT_THROW(t.row(), CheckError);
}

TEST(TableTest, DoubleFormattingPrecision) {
  Table t({"v"});
  t.row().cell(3.14159, 1);
  EXPECT_NE(t.to_text().find("3.1"), std::string::npos);
  EXPECT_EQ(t.to_text().find("3.14"), std::string::npos);
}

TEST(TableTest, EmptyHeadersRejected) {
  EXPECT_THROW(Table({}), CheckError);
}

}  // namespace
}  // namespace mch::io
