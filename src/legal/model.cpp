#include "legal/model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace mch::legal {

using lcp::Vector;
using linalg::CooMatrix;
using linalg::CsrMatrix;
using linalg::DenseMatrix;

double LegalizationModel::cell_x(const Vector& x, std::size_t cell) const {
  const std::size_t first = cell_first_var[cell];
  const std::size_t count = cell_var_count[cell];
  MCH_CHECK_MSG(first != kNoVariable && count > 0,
                "cell " << cell << " is fixed — it has no variables");
  double sum = 0.0;
  for (std::size_t k = 0; k < count; ++k) sum += x[first + k];
  return sum / static_cast<double>(count);
}

double LegalizationModel::cell_mismatch(const Vector& x,
                                        std::size_t cell) const {
  const std::size_t first = cell_first_var[cell];
  const std::size_t count = cell_var_count[cell];
  if (first == kNoVariable || count <= 1) return 0.0;
  const double mean = cell_x(x, cell);
  double worst = 0.0;
  for (std::size_t k = 0; k < count; ++k)
    worst = std::max(worst, std::abs(x[first + k] - mean));
  return worst;
}

double LegalizationModel::max_mismatch(const Vector& x) const {
  double worst = 0.0;
  for (std::size_t c = 0; c < cell_first_var.size(); ++c)
    worst = std::max(worst, cell_mismatch(x, c));
  return worst;
}

ComponentProblem LegalizationModel::component_problem(
    const std::vector<std::size_t>& vars,
    const std::vector<std::size_t>& rows) const {
  ComponentProblem component;
  component.variables = vars;
  component.constraints = rows;

  // Hessian: the component's variables cover whole blocks (a block is one
  // cell, and a cell is never split across components), so walk the sorted
  // variable list block by block.
  std::size_t i = 0;
  while (i < vars.size()) {
    const std::size_t blk = qp.K.block_of(vars[i]);
    const std::size_t off = qp.K.block_offset(blk);
    const std::size_t d = qp.K.block_size(blk);
    MCH_CHECK_MSG(vars[i] == off && i + d <= vars.size() &&
                      vars[i + d - 1] == off + d - 1,
                  "component variable set splits Hessian block " << blk);
    qp.K.append_block_to(component.qp.K, blk);
    i += d;
  }

  component.qp.p.resize(vars.size());
  for (std::size_t v = 0; v < vars.size(); ++v)
    component.qp.p[v] = qp.p[vars[v]];

  // Constraints, with columns remapped to local indices. Rows and (sorted)
  // columns keep their global relative order, so the CSR built here is the
  // global one restricted to the component.
  const auto local_var = [&](std::size_t global) {
    const auto it = std::lower_bound(vars.begin(), vars.end(), global);
    MCH_CHECK_MSG(it != vars.end() && *it == global,
                  "constraint references variable " << global
                                                    << " outside component");
    return static_cast<std::size_t>(it - vars.begin());
  };
  linalg::CooMatrix coo(rows.size(), vars.size());
  component.qp.b.resize(rows.size());
  component.schur_coupling_breaks.assign(rows.size(), false);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const std::size_t g = rows[r];
    for (std::size_t e = qp.B.row_ptr()[g]; e < qp.B.row_ptr()[g + 1]; ++e)
      coo.add(r, local_var(qp.B.col_idx()[e]), qp.B.values()[e]);
    component.qp.b[r] = qp.b[g];
    component.schur_coupling_breaks[r] = r == 0 || rows[r - 1] + 1 != g;
  }
  component.qp.B = linalg::CsrMatrix::from_coo(coo);
  return component;
}

LegalizationModel build_model(const db::Design& design,
                              const RowAssignment& base_rows,
                              const ModelOptions& options) {
  MCH_CHECK(base_rows.size() == design.num_cells());
  MCH_CHECK(options.lambda > 0.0);

  LegalizationModel model;
  model.lambda = options.lambda;
  model.base_rows = base_rows;

  const db::Chip& chip = design.chip();
  const std::size_t num_cells = design.num_cells();

  // 1. Variables: one per occupied row of each movable cell, in cell
  //    order. The per-cell Hessian block is I_d + λ·(EᵢᵀEᵢ) with Eᵢ the
  //    chain difference matrix over the cell's d subcells (chain graph
  //    Laplacian). Fixed cells get no variables.
  model.cell_first_var.assign(num_cells, LegalizationModel::kNoVariable);
  model.cell_var_count.assign(num_cells, 0);
  for (std::size_t c = 0; c < num_cells; ++c) {
    const db::Cell& cell = design.cells()[c];
    if (cell.fixed || cell.erased) continue;
    model.cell_first_var[c] = model.variables.size();
    const std::size_t d = cell.height_rows;
    model.cell_var_count[c] = d;
    MCH_CHECK_MSG(base_rows[c] + d <= chip.num_rows,
                  "cell " << c << " does not fit vertically");
    for (std::size_t k = 0; k < d; ++k)
      model.variables.push_back({c, k});

    DenseMatrix block(d, d);
    for (std::size_t r = 0; r < d; ++r) block(r, r) = 1.0;
    for (std::size_t r = 0; r + 1 < d; ++r) {
      // Chain edge (r, r+1) of EᵢᵀEᵢ.
      block(r, r) += options.lambda;
      block(r + 1, r + 1) += options.lambda;
      block(r, r + 1) -= options.lambda;
      block(r + 1, r) -= options.lambda;
    }
    model.qp.K.add_block(block);
  }
  const std::size_t n = model.variables.size();

  // 2. Linear term: p_v = −x'_cell for every variable of the cell.
  model.qp.p.resize(n);
  for (std::size_t v = 0; v < n; ++v)
    model.qp.p[v] = -design.cells()[model.variables[v].cell].gp_x;

  // 3. Row membership: variable k of movable cell c occupies chip row
  //    base+k; fixed cells occupy every row their outline touches.
  model.row_variables.assign(chip.num_rows, {});
  for (std::size_t v = 0; v < n; ++v) {
    const VariableInfo& info = model.variables[v];
    model.row_variables[base_rows[info.cell] + info.subrow].push_back(v);
  }

  struct FixedInterval {
    double start = 0.0;
    double end = 0.0;
  };
  std::vector<std::vector<FixedInterval>> row_obstacles(chip.num_rows);
  for (const db::Cell& cell : design.cells()) {
    if (!cell.fixed || cell.erased) continue;
    const double height =
        static_cast<double>(cell.height_rows) * chip.row_height;
    const auto first_row = static_cast<std::size_t>(std::clamp(
        std::floor(cell.y / chip.row_height + 1e-9), 0.0,
        static_cast<double>(chip.num_rows)));
    const auto end_row = static_cast<std::size_t>(std::clamp(
        std::ceil((cell.y + height) / chip.row_height - 1e-9), 0.0,
        static_cast<double>(chip.num_rows)));
    for (std::size_t r = first_row; r < end_row; ++r)
      row_obstacles[r].push_back({cell.x, cell.x + cell.width});
  }
  for (auto& obstacles : row_obstacles)
    std::sort(obstacles.begin(), obstacles.end(),
              [](const FixedInterval& a, const FixedInterval& b) {
                return a.start < b.start;
              });

  // 4. Order each chip row by GP x (ties by cell id) and emit the spacing
  //    constraints: chains between adjacent movables, and a one-sided
  //    lower bound for the first movable to the right of each obstacle
  //    (a movable "is right of" an obstacle when its GP x passes the
  //    obstacle's center).
  struct PendingConstraint {
    std::size_t left = LegalizationModel::kNoVariable;  ///< chain partner
    std::size_t right = 0;
    double bound = 0.0;       ///< used when left == kNoVariable
    std::size_t chip_row = 0; ///< row the constraint was emitted in
  };
  std::vector<PendingConstraint> pending;
  for (std::size_t r = 0; r < chip.num_rows; ++r) {
    auto& row_vars = model.row_variables[r];
    std::sort(row_vars.begin(), row_vars.end(),
              [&](std::size_t a, std::size_t b) {
                const double xa = design.cells()[model.variables[a].cell].gp_x;
                const double xb = design.cells()[model.variables[b].cell].gp_x;
                if (xa != xb) return xa < xb;
                return model.variables[a].cell < model.variables[b].cell;
              });

    const auto& obstacles = row_obstacles[r];
    std::size_t next_obstacle = 0;
    std::size_t prev_var = LegalizationModel::kNoVariable;
    double bound = -std::numeric_limits<double>::infinity();
    for (const std::size_t v : row_vars) {
      const double key = design.cells()[model.variables[v].cell].gp_x;
      while (next_obstacle < obstacles.size() &&
             (obstacles[next_obstacle].start +
              obstacles[next_obstacle].end) /
                     2.0 <=
                 key) {
        bound = std::max(bound, obstacles[next_obstacle].end);
        prev_var = LegalizationModel::kNoVariable;  // chain broken
        ++next_obstacle;
      }
      if (prev_var != LegalizationModel::kNoVariable) {
        pending.push_back({prev_var, v, 0.0, r});
      } else if (bound > 0.0) {
        pending.push_back({LegalizationModel::kNoVariable, v, bound, r});
      }
      prev_var = v;
    }
  }

  const std::size_t m = pending.size();
  CooMatrix coo(m, n);
  coo.reserve(2 * m);
  model.qp.b.resize(m);
  model.constraint_row.resize(m);
  for (std::size_t r = 0; r < m; ++r) {
    const PendingConstraint& pc = pending[r];
    model.constraint_row[r] = pc.chip_row;
    if (pc.left != LegalizationModel::kNoVariable) {
      coo.add(r, pc.left, -1.0);
      coo.add(r, pc.right, 1.0);
      model.qp.b[r] =
          design.cells()[model.variables[pc.left].cell].width;
    } else {
      // Obstacle lower bound: x_right >= obstacle end.
      coo.add(r, pc.right, 1.0);
      model.qp.b[r] = pc.bound;
    }
  }
  model.qp.B = CsrMatrix::from_coo(coo);
  return model;
}

}  // namespace mch::legal
