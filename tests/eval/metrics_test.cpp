#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace mch::eval {
namespace {

db::Design two_cell_design() {
  db::Chip chip;
  chip.num_rows = 4;
  chip.num_sites = 100;
  chip.site_width = 2.0;  // non-unit site width to exercise the conversion
  chip.row_height = 10.0;
  db::Design design(chip);
  db::Cell a;
  a.width = 4;
  a.gp_x = 10;
  a.gp_y = 5;
  a.x = 14;  // dx = 4 (2 sites)
  a.y = 10;  // dy = 5 (2.5 sites)
  design.add_cell(a);
  db::Cell b;
  b.width = 4;
  b.gp_x = 20;
  b.gp_y = 20;
  b.x = 20;
  b.y = 20;  // unmoved
  design.add_cell(b);
  return design;
}

TEST(MetricsTest, DisplacementInSiteUnits) {
  const DisplacementStats stats = displacement(two_cell_design());
  EXPECT_DOUBLE_EQ(stats.total_x_sites, 2.0);
  EXPECT_DOUBLE_EQ(stats.total_y_sites, 2.5);
  EXPECT_DOUBLE_EQ(stats.total_sites, 4.5);
  EXPECT_DOUBLE_EQ(stats.max_sites, 4.5);
  EXPECT_DOUBLE_EQ(stats.mean_sites, 2.25);
  EXPECT_DOUBLE_EQ(stats.quadratic, 16.0 + 25.0);
  EXPECT_EQ(stats.moved_cells, 1u);
}

TEST(MetricsTest, EmptyDesign) {
  db::Chip chip;
  chip.num_rows = 2;
  chip.num_sites = 10;
  const db::Design design(chip);
  const DisplacementStats stats = displacement(design);
  EXPECT_DOUBLE_EQ(stats.total_sites, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_sites, 0.0);
}

db::Design netlist_design() {
  db::Chip chip;
  chip.num_rows = 4;
  chip.num_sites = 100;
  chip.site_width = 1.0;
  chip.row_height = 10.0;
  db::Design design(chip);
  db::Cell a;
  a.width = 4;
  a.gp_x = 0;
  a.gp_y = 0;
  a.x = 0;
  a.y = 0;
  design.add_cell(a);
  db::Cell b;
  b.width = 4;
  b.gp_x = 10;
  b.gp_y = 10;
  b.x = 10;
  b.y = 10;
  design.add_cell(b);
  db::Net net;
  net.pins.push_back({0, 1.0, 2.0});
  net.pins.push_back({1, 0.0, 0.0});
  design.add_net(net);
  return design;
}

TEST(MetricsTest, HpwlOfTwoPinNet) {
  const db::Design design = netlist_design();
  // Pins at (1,2) and (10,10): HPWL = 9 + 8 = 17.
  EXPECT_DOUBLE_EQ(hpwl(design), 17.0);
  EXPECT_DOUBLE_EQ(gp_hpwl(design), 17.0);
  EXPECT_DOUBLE_EQ(delta_hpwl_fraction(design), 0.0);
}

TEST(MetricsTest, HpwlTracksMovement) {
  db::Design design = netlist_design();
  design.cells()[1].x = 20.0;  // pin x: 20 → HPWL = 19 + 8
  EXPECT_DOUBLE_EQ(hpwl(design), 27.0);
  EXPECT_DOUBLE_EQ(gp_hpwl(design), 17.0);
  EXPECT_NEAR(delta_hpwl_fraction(design), 10.0 / 17.0, 1e-12);
}

TEST(MetricsTest, SinglePinNetsIgnored) {
  db::Design design = netlist_design();
  db::Net lonely;
  lonely.pins.push_back({0, 0, 0});
  design.add_net(lonely);
  EXPECT_DOUBLE_EQ(hpwl(design), 17.0);
}

TEST(MetricsTest, NoNetsGivesZeroDelta) {
  const db::Design design = two_cell_design();
  EXPECT_DOUBLE_EQ(delta_hpwl_fraction(design), 0.0);
}

TEST(MetricsTest, MultiPinNetBoundingBox) {
  db::Design design = netlist_design();
  db::Net net;
  net.pins.push_back({0, 0.0, 0.0});   // (0, 0)
  net.pins.push_back({0, 4.0, 0.0});   // (4, 0)
  net.pins.push_back({1, 0.0, 10.0});  // (10, 20)
  design.add_net(net);
  // New net bbox: x [0,10], y [0,20] → 30. Total = 17 + 30.
  EXPECT_DOUBLE_EQ(hpwl(design), 47.0);
}

}  // namespace
}  // namespace mch::eval
