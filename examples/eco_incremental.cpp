// ECO-style incremental legalization: after an engineering change order
// perturbs a handful of cells, the flow re-legalizes from the *previous
// legal placement* as the new GP. Because the MMSIM starts from an almost
// feasible point and honors the existing ordering, the rest of the design
// barely moves — placement stability is a key production property of a
// legalizer.
//
//   ./eco_incremental [num-cells] [eco-cells]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "eval/metrics.h"
#include "gen/generator.h"
#include "legal/flow.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace mch;
  const std::size_t num_cells =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 5000;
  const std::size_t eco_cells =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 25;

  gen::GeneratorOptions options;
  options.seed = 11;
  db::Design design = gen::generate_random_design(
      num_cells - num_cells / 10, num_cells / 10, 0.7, options);

  // Initial legalization.
  const legal::FlowResult first = legal::legalize(design);
  std::printf("initial legalization: %s, displacement %.1f sites\n",
              first.legal ? "legal" : "ILLEGAL",
              eval::displacement(design).total_sites);

  // ECO: the legal result becomes the new GP, then a few cells are
  // disturbed (as if resized/re-routed and nudged by an ECO tool).
  design.commit_positions_as_gp();
  Rng rng(99);
  std::vector<std::size_t> touched;
  for (std::size_t k = 0; k < eco_cells; ++k) {
    const auto id = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(design.num_cells()) - 1));
    db::Cell& cell = design.cells()[id];
    if (cell.fixed) continue;
    cell.gp_x += rng.normal(0.0, 6.0 * design.chip().site_width);
    cell.gp_y += rng.normal(0.0, 0.8 * design.chip().row_height);
    cell.gp_x = std::max(0.0, cell.gp_x);
    cell.gp_y = std::max(0.0, cell.gp_y);
    touched.push_back(id);
  }
  std::printf("ECO perturbed %zu cells\n", touched.size());

  // Re-legalize.
  const legal::FlowResult second = legal::legalize(design);
  const eval::DisplacementStats disp = eval::displacement(design);
  std::size_t moved = disp.moved_cells;
  std::printf("re-legalization: %s in %.3fs, %zu iterations\n",
              second.legal ? "legal" : "ILLEGAL", second.total_seconds,
              second.solver.iterations);
  std::printf("cells that moved: %zu of %zu (%.2f%%) — stability: the "
              "disturbance stays local\n",
              moved, design.num_cells(),
              100.0 * static_cast<double>(moved) /
                  static_cast<double>(design.num_cells()));
  std::printf("total re-legalization displacement: %.1f sites (mean over "
              "moved cells %.2f)\n",
              disp.total_sites,
              moved ? disp.total_sites / static_cast<double>(moved) : 0.0);
  return second.legal ? 0 : 1;
}
