// Legality oracle for mixed-cell-height placements.
//
// Checks the four constraints of the paper's problem formulation (Eq. 1):
//   (1) cells inside the chip region,
//   (2) cells on placement sites on rows,
//   (3) cells pairwise non-overlapping,
//   (4) even-height cells aligned with matching power rails.
//
// Every legalizer output in tests and benches is validated through this
// checker; benchmark tables refuse to report metrics for illegal placements.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "db/design.h"

namespace mch::db {

enum class ViolationKind {
  kOutsideChip,
  kOffSite,
  kOffRow,
  kOverlap,
  kRailMismatch,
};

const char* to_string(ViolationKind kind);

struct Violation {
  ViolationKind kind;
  std::size_t cell = 0;        ///< offending cell index
  std::size_t other = 0;       ///< second cell for overlaps; unused otherwise
  std::string detail;
};

struct LegalityReport {
  bool legal() const { return total_violations == 0; }

  std::size_t total_violations = 0;
  std::size_t outside_chip = 0;
  std::size_t off_site = 0;
  std::size_t off_row = 0;
  std::size_t overlaps = 0;
  std::size_t rail_mismatches = 0;
  double max_overlap_depth = 0.0;  ///< deepest pairwise x-overlap found

  /// First `max_recorded` violations in detail (counting continues beyond).
  std::vector<Violation> violations;

  std::string summary() const;
};

struct LegalityOptions {
  /// Absolute tolerance for grid/boundary alignment, in distance units.
  double tolerance = 1e-6;
  /// How many violations to record in detail.
  std::size_t max_recorded = 32;
  /// When false, overlap tolerance is applied but site/row snapping is not
  /// required (used to audit intermediate, pre-snap solver output).
  bool require_site_alignment = true;
};

/// Checks the current (x, y) of every cell in the design.
LegalityReport check_legality(const Design& design,
                              const LegalityOptions& options = {});

}  // namespace mch::db
