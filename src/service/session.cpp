#include "service/session.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "db/legality.h"
#include "legal/mmsim_legalizer.h"
#include "legal/tetris_alloc.h"
#include "obs/obs.h"
#include "runtime/parallel.h"
#include "util/check.h"
#include "util/timer.h"

namespace mch::service {

namespace {

/// Displacement of the design's current positions versus its GP input, in
/// sites (the eval-layer convention), skipping fixed and erased cells.
SessionDisplacement measure_displacement(const db::Design& design) {
  SessionDisplacement d;
  const double site = design.chip().site_width;
  for (const db::Cell& cell : design.cells()) {
    if (cell.fixed || cell.erased) continue;
    const double dist =
        std::abs(cell.x - cell.gp_x) + std::abs(cell.y - cell.gp_y);
    d.total_sites += dist / site;
    d.max_sites = std::max(d.max_sites, dist / site);
    if (dist > 0.0) ++d.moved_cells;
  }
  const std::size_t live = design.num_cells() - design.num_erased_cells() -
                           design.num_fixed_cells();
  d.mean_sites = live > 0 ? d.total_sites / static_cast<double>(live) : 0.0;
  return d;
}

}  // namespace

const char* to_string(SolveMode mode) {
  switch (mode) {
    case SolveMode::kAuto:
      return "auto";
    case SolveMode::kIncremental:
      return "incremental";
    case SolveMode::kMatch:
      return "match";
  }
  return "?";
}

struct LegalizationSession::ApplyOutcome {
  legal::PartitionDelta delta;
};

LegalizationSession::LegalizationSession(db::Design design,
                                         SessionOptions options)
    : design_(std::move(design)), options_(std::move(options)) {}

LegalizationSession::ApplyOutcome LegalizationSession::apply_ops(
    const std::vector<EcoOp>& ops) {
  ApplyOutcome out;
  const db::Chip& chip = design_.chip();
  out.delta.affected_rows.assign(chip.num_rows, 0);
  std::vector<std::size_t> touched;

  const auto mark_rows = [&](std::size_t first, std::size_t count) {
    const std::size_t end = std::min(first + count, chip.num_rows);
    for (std::size_t r = first; r < end; ++r)
      out.delta.affected_rows[r] = 1;
  };
  // Fixed cells obstruct every row their outline overlaps — the same rule
  // the model builder uses to emit obstacle segments.
  const auto mark_outline = [&](const db::Cell& cell) {
    const double height =
        static_cast<double>(cell.height_rows) * chip.row_height;
    const auto first = static_cast<std::size_t>(std::max(
        0.0, std::floor(cell.y / chip.row_height + 1e-9)));
    const auto end = static_cast<std::size_t>(std::max(
        0.0, std::ceil((cell.y + height) / chip.row_height - 1e-9)));
    if (end > first) mark_rows(first, end - first);
  };
  // The rows a cell occupies *now*, before an op disturbs it: its assigned
  // span when a solve exists, its outline when fixed.
  const auto mark_current = [&](std::size_t id) {
    const db::Cell& cell = design_.cells()[id];
    if (cell.fixed)
      mark_outline(cell);
    else if (id < base_rows_.size())
      mark_rows(base_rows_[id], cell.height_rows);
  };

  for (const EcoOp& op : ops) {
    switch (op.kind) {
      case EcoOp::Kind::kMove: {
        mark_current(op.cell);
        design_.move_cell(op.cell, op.gp_x, op.gp_y);
        db::Cell& cell = design_.cells()[op.cell];
        const std::size_t base = design_.nearest_legal_row(cell);
        if (op.cell < base_rows_.size()) base_rows_[op.cell] = base;
        cell.y = chip.row_y(base);
        mark_rows(base, cell.height_rows);
        touched.push_back(op.cell);
        break;
      }
      case EcoOp::Kind::kInsert: {
        const std::size_t id = design_.insert_cell(op.payload);
        db::Cell& cell = design_.cells()[id];
        if (cell.fixed) {
          // A fixed insert is a new obstacle; its GP is its placement.
          if (base_rows_.size() == id)
            base_rows_.push_back(design_.nearest_row(cell.y,
                                                     cell.height_rows));
          mark_outline(cell);
        } else {
          const std::size_t base = design_.nearest_legal_row(cell);
          if (base_rows_.size() == id) base_rows_.push_back(base);
          cell.y = chip.row_y(base);
          mark_rows(base, cell.height_rows);
        }
        touched.push_back(id);
        break;
      }
      case EcoOp::Kind::kErase: {
        mark_current(op.cell);
        design_.erase_cell(op.cell);
        touched.push_back(op.cell);
        break;
      }
    }
  }

  out.delta.touched_cells.assign(design_.num_cells(), 0);
  for (const std::size_t id : touched) out.delta.touched_cells[id] = 1;
  return out;
}

void LegalizationSession::run_full(bool force_match, SessionResult& result) {
  obs::TraceSpan span("session.run_full");
  {
    obs::TraceSpan rows_span("session.rows");
    Timer rows_timer;
    base_rows_ = legal::assign_rows(design_);
    result.phase.rows += rows_timer.seconds();
  }

  // The partition streams out of the model build (united edge by edge as
  // constraints are emitted), so the resident session never walks the
  // finished model a second time.
  {
    obs::TraceSpan model_span("session.model_build");
    Timer model_timer;
    partition_ = {};
    model_ = legal::build_model(design_, base_rows_,
                                options_.flow.solver.model, &partition_);
    result.phase.model += model_timer.seconds();
    model_span.arg("variables", model_.num_variables())
        .arg("components", partition_.num_components());
  }

  legal::FlowOptions flow = options_.flow;
  flow.verify = options_.verify;
  flow.solver.prebuilt_model = &model_;
  flow.solver.prebuilt_partition = &partition_;
  flow.solver.solution_out = &solution_;
  flow.solver.workspace = &workspace_full_;
  // Forcing kMatch here (not via MCH_PARTITION) is what makes match-mode
  // requests bitwise reproducible regardless of the environment.
  if (force_match) flow.solver.partition = legal::PartitionMode::kMatch;

  Timer solve_timer;
  const legal::FlowResult flow_result = legal::legalize(design_, flow);
  const double flow_seconds = solve_timer.seconds();

  result.solver = flow_result.solver;
  result.allocation = flow_result.allocation;
  result.legal = flow_result.legal;
  result.legality_summary =
      options_.verify ? flow_result.legality.summary() : "(not verified)";
  result.phase.solve += flow_result.solver.solve_seconds;
  result.phase.allocate +=
      std::max(0.0, flow_seconds - flow_result.solver.solve_seconds -
                        flow_result.solver.model_seconds);

  result.session.components_total = partition_.num_components();
  // A full solve re-solves everything: every component is dirty, none
  // reused (keeps the incremental columns of downstream tables honest).
  result.session.components_dirty = partition_.num_components();
  result.session.components_reused = 0;
  solved_ = true;
  span.arg("components", partition_.num_components())
      .arg("legal", result.legal);
}

void LegalizationSession::run_incremental(const legal::PartitionDelta& delta,
                                          SessionResult& result) {
  result.session.incremental = true;
  obs::TraceSpan span("session.run_incremental");

  // The previous model/partition/solution stay alive through this request:
  // the repartition diffs against them and clean components copy their
  // previous solution entries verbatim.
  legal::LegalizationModel prev_model = std::move(model_);
  {
    obs::TraceSpan model_span("session.model_rebuild");
    Timer model_timer;
    model_ =
        legal::build_model(design_, base_rows_, options_.flow.solver.model);
    result.phase.model += model_timer.seconds();
  }

  const legal::ConstraintPartition prev_partition = std::move(partition_);
  {
    obs::TraceSpan partition_span("session.repartition");
    Timer partition_timer;
    partition_ =
        legal::repartition_model(model_, prev_model, prev_partition, delta);
    result.phase.partition += partition_timer.seconds();
    partition_span.arg("components", partition_.num_components());
  }

  // Dirty-component rule (header): a component must be re-solved iff it
  // contains a touched cell's variable or a variable in an affected row.
  Timer extract_timer;
  const auto affected = [&](std::size_t row) {
    return row < delta.affected_rows.size() && delta.affected_rows[row] != 0;
  };
  std::vector<char> dirty(partition_.num_components(), 0);
  for (std::size_t v = 0; v < model_.num_variables(); ++v) {
    const legal::VariableInfo& info = model_.variables[v];
    if (delta.touched_cells[info.cell] != 0 ||
        affected(model_.base_rows[info.cell] + info.subrow))
      dirty[partition_.variable_component[v]] = 1;
  }
  std::vector<std::size_t> dirty_ids;
  for (std::size_t c = 0; c < dirty.size(); ++c)
    if (dirty[c] != 0) dirty_ids.push_back(c);

  // Jobs reference the partition's index lists directly; solve_components
  // extracts, solves, scatters, and releases each dirty sub-problem inside
  // its worker, so the request's high-water mark holds one extraction per
  // pool thread instead of every dirty component at once.
  //
  // Workspace slots are keyed by the component's anchor cell, so a region
  // re-touched by a later request lands in the same slot and warm-starts
  // from its own previous solve. Slot assignment happens in ascending
  // component order — deterministic across runs.
  std::vector<legal::ComponentSolveJob> jobs(dirty_ids.size());
  std::vector<std::size_t> slots(dirty_ids.size());
  for (std::size_t i = 0; i < dirty_ids.size(); ++i) {
    const std::size_t c = dirty_ids[i];
    const std::size_t anchor =
        model_.variables[partition_.component_variables[c][0]].cell;
    const auto [it, inserted] =
        eco_slot_of_anchor_.try_emplace(anchor, eco_slot_of_anchor_.size());
    (void)inserted;
    slots[i] = it->second;
  }
  workspace_eco_.prepare(eco_slot_of_anchor_.size());
  for (std::size_t i = 0; i < dirty_ids.size(); ++i) {
    const std::size_t c = dirty_ids[i];
    jobs[i] = {&partition_.component_variables[c],
               &partition_.component_constraints[c],
               &workspace_eco_.slot(slots[i]), c};
  }
  result.phase.extract += extract_timer.seconds();

  Timer solve_timer;
  lcp::Vector x;
  x.assign(model_.num_variables(), 0.0);
  legal::MmsimLegalizerOptions solver_options = options_.flow.solver;
  const lcp::RecoveryOptions recovery =
      lcp::resolve_recovery_options(solver_options.recovery);
  legal::ComponentSolveReport report;
  {
    obs::TraceSpan solve_span("session.solve");
    solve_span.arg("dirty", dirty_ids.size())
        .arg("total", partition_.num_components());
    report = legal::solve_components(design_, model_, jobs, solver_options,
                                     recovery, x);
    solve_span.arg("warm_hits", report.warm_started)
        .arg("converged", report.converged);
  }
  result.phase.solve += solve_timer.seconds();

  // Clean components: the previous converged solution is still converged
  // (their local QP is bit-identical), so copy it verbatim by (cell,
  // subrow) — no solver touches them.
  {
    obs::TraceSpan reuse_span("session.reuse_and_write_back");
    Timer reuse_timer;
    for (std::size_t c = 0; c < partition_.num_components(); ++c) {
      if (dirty[c] != 0) continue;
      for (const std::size_t v : partition_.component_variables[c]) {
        const legal::VariableInfo& info = model_.variables[v];
        x[v] = solution_[prev_model.cell_first_var[info.cell] + info.subrow];
      }
    }

    // Write back every live movable, mirroring the legalizer: multi-row
    // positions are subcell means, snap-clamped cells stay inside the chip.
    std::vector<char> clamped;
    if (!report.clamped_cells.empty()) {
      clamped.assign(design_.num_cells(), 0);
      for (const std::size_t c : report.clamped_cells) clamped[c] = 1;
    }
    const db::Chip& chip = design_.chip();
    for (std::size_t c = 0; c < design_.num_cells(); ++c) {
      db::Cell& cell = design_.cells()[c];
      if (cell.fixed || cell.erased) continue;
      double pos = model_.cell_x(x, c);
      if (!clamped.empty() && clamped[c] != 0)
        pos = std::clamp(pos, 0.0, std::max(0.0, chip.width() - cell.width));
      cell.x = pos;
      cell.y = chip.row_y(base_rows_[c]);
    }
    solution_ = std::move(x);
    result.phase.reuse += reuse_timer.seconds();
  }

  // Report the solve in the legalizer's vocabulary so SessionResult::solver
  // reads the same in both modes.
  result.solver = legal::MmsimLegalizerStats{};
  result.solver.num_variables = model_.num_variables();
  result.solver.num_constraints = model_.qp.num_constraints();
  result.solver.iterations = report.iterations;
  result.solver.converged = report.converged;
  result.solver.max_mismatch = model_.max_mismatch(solution_);
  result.solver.theta_used = solver_options.mmsim.theta;
  result.solver.model_seconds = result.phase.model;
  result.solver.solve_seconds = result.phase.solve;
  result.solver.objective = model_.qp.objective(solution_);
  result.solver.num_components = partition_.num_components();
  result.solver.max_component_size = partition_.max_component_size();
  result.solver.mean_component_size = partition_.mean_component_size();
  result.solver.components_mmsim = report.components_mmsim;
  result.solver.components_psor = report.components_psor;
  result.solver.components_lemke = report.components_lemke;
  result.solver.component_iterations = report.component_iterations;
  result.solver.mixed_iterations = report.mixed_iterations;
  result.solver.precision_used = solver_options.mmsim.precision;
  result.solver.simd_level = linalg::simd_level();
  result.solver.phase = report.phase;
  result.solver.recovery = report.recovery;

  result.session.components_total = partition_.num_components();
  result.session.components_dirty = dirty_ids.size();
  result.session.components_reused =
      partition_.num_components() - dirty_ids.size();
  result.session.warm_start_hits = report.warm_started;
  result.session.warm_start_rate =
      dirty_ids.empty() ? 0.0
                        : static_cast<double>(report.warm_started) /
                              static_cast<double>(dirty_ids.size());

  {
    obs::TraceSpan allocate_span("session.allocate");
    Timer allocate_timer;
    result.allocation = legal::tetris_allocate(design_);
    legal::assign_orientations(design_);
    result.phase.allocate += allocate_timer.seconds();
  }

  if (options_.verify) {
    obs::TraceSpan verify_span("session.verify");
    Timer verify_timer;
    const db::LegalityReport legality = db::check_legality(design_);
    result.legal = legality.legal() && result.allocation.unplaced_cells == 0;
    result.legality_summary = legality.summary();
    result.phase.verify += verify_timer.seconds();
  } else {
    result.legality_summary = "(not verified)";
  }
  span.arg("dirty", result.session.components_dirty)
      .arg("reused", result.session.components_reused)
      .arg("legal", result.legal);
}

void LegalizationSession::finish(SessionResult& result) {
  result.displacement = measure_displacement(design_);
  result.phase.total = result.phase.apply + result.phase.rows +
                       result.phase.model + result.phase.partition +
                       result.phase.extract + result.phase.solve +
                       result.phase.reuse + result.phase.allocate +
                       result.phase.verify;
}

SessionResult LegalizationSession::full_legalize(SolveMode mode) {
  SolveMode resolved = mode == SolveMode::kAuto ? options_.default_mode : mode;
  if (resolved == SolveMode::kAuto) resolved = SolveMode::kIncremental;

  SessionResult result;
  result.request_id = next_request_++;
  result.kind = RequestKind::kFullLegalize;
  result.mode = resolved;

  Timer total;
  {
    obs::TraceSpan span("session.request.full_legalize");
    span.arg("request", result.request_id).arg("mode", to_string(resolved));
    run_full(/*force_match=*/resolved == SolveMode::kMatch, result);
    finish(result);
    result.seconds = total.seconds();
  }
  obs::counter("session.requests", "kind", "full_legalize").add();
  obs::histogram("session.full_legalize.latency_seconds")
      .observe(result.seconds);
  return result;
}

SessionResult LegalizationSession::eco(const EcoRequest& request) {
  SolveMode resolved =
      request.mode == SolveMode::kAuto ? options_.default_mode : request.mode;
  if (resolved == SolveMode::kAuto) resolved = SolveMode::kIncremental;

  SessionResult result;
  result.request_id = next_request_++;
  result.kind = RequestKind::kEco;
  result.mode = resolved;

  Timer total;
  {
    obs::TraceSpan span("session.request.eco");
    span.arg("request", result.request_id)
        .arg("mode", to_string(resolved))
        .arg("ops", request.ops.size());
    ApplyOutcome applied;
    {
      obs::TraceSpan apply_span("session.apply_ops");
      Timer apply_timer;
      applied = apply_ops(request.ops);
      result.phase.apply += apply_timer.seconds();
      result.session.touched_cells = static_cast<std::size_t>(
          std::count(applied.delta.touched_cells.begin(),
                     applied.delta.touched_cells.end(), char{1}));
      result.session.affected_rows = static_cast<std::size_t>(
          std::count(applied.delta.affected_rows.begin(),
                     applied.delta.affected_rows.end(), char{1}));
      apply_span.arg("touched_cells", result.session.touched_cells)
          .arg("affected_rows", result.session.affected_rows);
    }

    if (resolved == SolveMode::kIncremental && solved_) {
      run_incremental(applied.delta, result);
      if (options_.verify && !result.legal &&
          options_.fallback_to_full_on_illegal) {
        ++result.session.full_solve_fallbacks;
        result.session.incremental = false;
        obs::counter("session.full_solve_fallbacks").add();
        run_full(/*force_match=*/false, result);
      }
    } else {
      // Match mode, or no resident solve to be incremental against.
      run_full(/*force_match=*/resolved == SolveMode::kMatch, result);
    }

    finish(result);
    result.seconds = total.seconds();
    span.arg("dirty", result.session.components_dirty)
        .arg("reused", result.session.components_reused);
  }
  obs::counter("session.requests", "kind", "eco").add();
  obs::histogram("session.eco.latency_seconds").observe(result.seconds);
  {
    static obs::Counter& dirty = obs::counter("session.components_dirty");
    static obs::Counter& reused = obs::counter("session.components_reused");
    static obs::Counter& warm = obs::counter("session.warm_start_hits");
    dirty.add(result.session.components_dirty);
    reused.add(result.session.components_reused);
    warm.add(result.session.warm_start_hits);
  }
  return result;
}

SessionResult LegalizationSession::eco(std::vector<EcoOp> ops) {
  EcoRequest request;
  request.ops = std::move(ops);
  return eco(request);
}

void LegalizationSession::commit_legal_as_gp() {
  design_.commit_positions_as_gp();
  // Every GP moved, so the resident solution no longer describes the
  // design's optimization problem; the next request must solve in full.
  solved_ = false;
}

}  // namespace mch::service
