// Connected-component decomposition of the legalization constraint graph.
//
// The relaxed LCP couples variables only through (a) same-row spacing
// chains — the rows of B — and (b) the subcell ties of multi-row cells —
// the blocks of K. Treating both as edges, the constraint graph falls
// apart into many independent components: every obstacle breaks a row
// chain, and rows that share no tall cell never talk to each other. Each
// component is a self-contained QP that can be solved in isolation and in
// parallel with the others; the partitioned legalizer in mmsim_legalizer.cpp
// is built on exactly this observation (cf. the locality argument of Cong &
// Romesis & Xie's placement-suboptimality studies: post-GP subproblems are
// overwhelmingly local).
//
// The decomposition is lossless: the right chip boundary is relaxed in the
// model (repaired later by the Tetris-like allocation), so no global
// resource couples the components — the partitioned optimum is the global
// optimum restricted to each component.
#pragma once

#include <cstddef>
#include <vector>

#include "legal/model.h"
#include "legal/union_find.h"
#include "util/index.h"

namespace mch::legal {

/// The connected components of a model's constraint graph, in canonical
/// order (ascending smallest global variable index). All index lists are
/// sorted ascending, so extracted sub-problems preserve the global relative
/// ordering of variables and constraint rows. Stored as index_t: the four
/// arrays together hold ~2(n+m) indices and are resident for a session's
/// lifetime.
struct ConstraintPartition {
  std::vector<index_t> variable_component;    ///< variable -> component
  std::vector<index_t> constraint_component;  ///< B row -> component
  std::vector<std::vector<index_t>> component_variables;
  std::vector<std::vector<index_t>> component_constraints;

  std::size_t num_components() const { return component_variables.size(); }

  /// Variables + constraints of component c (its KKT LCP dimension).
  std::size_t component_size(std::size_t c) const {
    return component_variables[c].size() + component_constraints[c].size();
  }

  std::size_t max_component_size() const;
  double mean_component_size() const;
};

/// Computes the components by union-find over the model's variables: the
/// variables of each Hessian block (one multi-row cell) are united, as are
/// the variables sharing a spacing row of B.
ConstraintPartition partition_model(const LegalizationModel& model);

/// Turns a fully-united union-find over the model's variables into the
/// canonical partition: component ids ascend by smallest variable index,
/// all index lists sorted. Shared by partition_model, repartition_model,
/// and the streamed build (build_model's partition_out), so every path
/// produces bit-identical partitions from the same edge set regardless of
/// union order. Requires model.qp.B to be fully assembled.
ConstraintPartition finalize_partition(UnionFind& uf,
                                       const LegalizationModel& model);

/// What an ECO batch touched, for the incremental repartition. Both masks
/// are dense: touched_cells is indexed by cell id of the *new* design (a
/// cell counts as touched when it was moved, inserted, or erased by the
/// batch), affected_rows by chip row (the union of every touched cell's
/// old and new row spans).
struct PartitionDelta {
  std::vector<char> touched_cells;
  std::vector<char> affected_rows;
};

/// Incremental re-union after an ECO batch: produces exactly
/// partition_model(model), but instead of walking every spacing row of B it
/// only walks the rows of affected chip rows and of previously-dirty
/// components, swallowing each clean previous component with one wholesale
/// union (its internal edges cannot have changed: its cells are untouched
/// and its rows unaffected, so the same chains exist in the new model).
/// `prev_model`/`previous` are the model and partition of the state the
/// delta was applied to; variables are matched across the two models by
/// (cell, subrow), which is stable because ECO ids are stable.
ConstraintPartition repartition_model(const LegalizationModel& model,
                                      const LegalizationModel& prev_model,
                                      const ConstraintPartition& previous,
                                      const PartitionDelta& delta);

}  // namespace mch::legal
