// Tetris-like allocation — the final step of the paper's flow (§4).
//
// The MMSIM output is optimal for the relaxed problem but continuous: cells
// may sit between sites, a multi-row cell's subcells may disagree by
// numerical precision, and the relaxed right boundary may be violated. This
// pass:
//
//   1. snaps every cell to the nearest placement site,
//   2. scans cells in left-to-right order accepting those that are
//      overlap-free and inside the chip, marking the rest *illegal*
//      (Table 1 counts exactly these cells), and
//   3. re-places each illegal cell at the nearest free rail-correct
//      position (possibly on another row).
//
// The paper observes ≤ 0.8% (avg 0.03%) illegal cells, so this pass rarely
// moves anything and the MMSIM optimum survives nearly untouched.
#pragma once

#include <cstddef>
#include <vector>

#include "db/design.h"
#include "legal/occupancy.h"
#include "legal/row_assign.h"

namespace mch::legal {

struct TetrisStats {
  std::size_t illegal_cells = 0;      ///< cells needing step-3 relocation
  std::size_t unplaced_cells = 0;     ///< relocation failures (full chip)
  double relocation_cost_sites = 0.0; ///< Manhattan movement added by step 3
};

/// Runs the allocation on a design whose y positions are row-aligned
/// (current x is the MMSIM continuous solution). Mutates cell positions to
/// the final legal placement.
TetrisStats tetris_allocate(db::Design& design);

}  // namespace mch::legal
