#include "legal/occupancy.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace mch::legal {
namespace {

db::Chip test_chip() {
  db::Chip chip;
  chip.num_rows = 6;
  chip.num_sites = 100;
  chip.site_width = 1.0;
  chip.row_height = 10.0;
  return chip;
}

TEST(RowOccupancyTest, EmptyRowIsFree) {
  RowOccupancy row;
  EXPECT_TRUE(row.is_free(0, 100));
  EXPECT_TRUE(row.is_free(50, 50));  // empty span
}

TEST(RowOccupancyTest, OccupyBlocksSpan) {
  RowOccupancy row;
  row.occupy(10, 20);
  EXPECT_FALSE(row.is_free(10, 20));
  EXPECT_FALSE(row.is_free(5, 11));
  EXPECT_FALSE(row.is_free(19, 25));
  EXPECT_FALSE(row.is_free(12, 15));
  EXPECT_TRUE(row.is_free(0, 10));
  EXPECT_TRUE(row.is_free(20, 30));
}

TEST(RowOccupancyTest, DoubleOccupyThrows) {
  RowOccupancy row;
  row.occupy(10, 20);
  EXPECT_THROW(row.occupy(15, 25), CheckError);
}

TEST(RowOccupancyTest, CoalescingKeepsStructureSmall) {
  RowOccupancy row;
  row.occupy(0, 10);
  row.occupy(10, 20);
  row.occupy(20, 30);
  EXPECT_EQ(row.interval_count(), 1u);
  EXPECT_FALSE(row.is_free(0, 30));
  EXPECT_TRUE(row.is_free(30, 31));
}

TEST(RowOccupancyTest, ReleaseWholeInterval) {
  RowOccupancy row;
  row.occupy(10, 20);
  row.release(10, 20);
  EXPECT_TRUE(row.is_free(0, 100));
  EXPECT_EQ(row.interval_count(), 0u);
}

TEST(RowOccupancyTest, ReleaseMiddleSplits) {
  RowOccupancy row;
  row.occupy(10, 30);
  row.release(15, 20);
  EXPECT_TRUE(row.is_free(15, 20));
  EXPECT_FALSE(row.is_free(10, 15));
  EXPECT_FALSE(row.is_free(20, 30));
  EXPECT_EQ(row.interval_count(), 2u);
}

TEST(RowOccupancyTest, ReleaseUnoccupiedThrows) {
  RowOccupancy row;
  row.occupy(10, 20);
  EXPECT_THROW(row.release(30, 40), CheckError);
  EXPECT_THROW(row.release(15, 25), CheckError);  // straddles the edge
}

TEST(RowOccupancyTest, CollectClipsToWindow) {
  RowOccupancy row;
  row.occupy(10, 20);
  row.occupy(40, 50);
  std::vector<std::pair<SiteIndex, SiteIndex>> out;
  row.collect(15, 45, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (std::pair<SiteIndex, SiteIndex>{15, 20}));
  EXPECT_EQ(out[1], (std::pair<SiteIndex, SiteIndex>{40, 45}));
}

TEST(OccupancyGridTest, MultiRowSpansAllRows) {
  OccupancyGrid grid(test_chip());
  grid.occupy(1, 2, 10, 5);  // rows 1-2, sites [10,15)
  EXPECT_FALSE(grid.is_free(1, 1, 10, 5));
  EXPECT_FALSE(grid.is_free(2, 1, 10, 5));
  EXPECT_TRUE(grid.is_free(0, 1, 10, 5));
  EXPECT_TRUE(grid.is_free(3, 1, 10, 5));
  EXPECT_FALSE(grid.is_free(0, 2, 12, 5));  // spans into row 1
}

TEST(OccupancyGridTest, BoundsChecked) {
  OccupancyGrid grid(test_chip());
  EXPECT_FALSE(grid.is_free(0, 1, -1, 5));
  EXPECT_FALSE(grid.is_free(0, 1, 96, 5));   // extends past right edge
  EXPECT_FALSE(grid.is_free(5, 2, 0, 5));    // extends past top row
  EXPECT_TRUE(grid.is_free(0, 1, 95, 5));
}

TEST(OccupancyGridTest, FindInRowsExactTarget) {
  OccupancyGrid grid(test_chip());
  const PlacementCandidate cand = grid.find_in_rows(0, 1, 5, 30.0);
  ASSERT_TRUE(cand.found);
  EXPECT_EQ(cand.site, 30);
  EXPECT_DOUBLE_EQ(cand.cost, 0.0);
}

TEST(OccupancyGridTest, FindInRowsAvoidsOccupied) {
  OccupancyGrid grid(test_chip());
  grid.occupy(0, 1, 28, 10);  // [28, 38)
  const PlacementCandidate cand = grid.find_in_rows(0, 1, 5, 30.0);
  ASSERT_TRUE(cand.found);
  // Nearest feasible: left gap ends at 28 (site 23) or right gap at 38.
  EXPECT_TRUE(cand.site == 23 || cand.site == 38);
  EXPECT_LE(cand.cost, 8.0);
}

TEST(OccupancyGridTest, FindInRowsFullRowFails) {
  OccupancyGrid grid(test_chip());
  grid.occupy(0, 1, 0, 100);
  EXPECT_FALSE(grid.find_in_rows(0, 1, 5, 50.0).found);
}

TEST(OccupancyGridTest, FindInRowsWidthTooLargeFails) {
  OccupancyGrid grid(test_chip());
  EXPECT_FALSE(grid.find_in_rows(0, 1, 101, 0.0).found);
}

TEST(OccupancyGridTest, FindInRowsMergedGapAcrossRows) {
  OccupancyGrid grid(test_chip());
  // Row 0 blocked [0,50); row 1 blocked [45,100): common free gap for a
  // double-height cell is exactly [50, 100) ∩ [0, 45) = empty... so only
  // a width-0 fit; check that [50,100) of row0 with row1 [0,45) blocked
  // leaves no common gap wider than 0 — find a 5-wide span must fail.
  grid.occupy(0, 1, 0, 50);
  grid.occupy(1, 1, 45, 55);
  EXPECT_FALSE(grid.find_in_rows(0, 2, 5, 40.0).found);
  // Free row pair elsewhere succeeds.
  EXPECT_TRUE(grid.find_in_rows(2, 2, 5, 40.0).found);
}

TEST(OccupancyGridTest, FindNearestHonorsRails) {
  const db::Chip chip = test_chip();
  OccupancyGrid grid(chip);
  db::Cell even;
  even.width = 5;
  even.height_rows = 2;
  even.bottom_rail = db::RailType::kVdd;  // odd rows only
  const PlacementCandidate cand = grid.find_nearest(even, 50.0, 0.0);
  ASSERT_TRUE(cand.found);
  EXPECT_EQ(cand.base_row % 2, 1u);
}

TEST(OccupancyGridTest, FindNearestPrefersCloserRow) {
  OccupancyGrid grid(test_chip());
  db::Cell cell;
  cell.width = 5;
  cell.height_rows = 1;
  const PlacementCandidate cand = grid.find_nearest(cell, 50.0, 32.0);
  ASSERT_TRUE(cand.found);
  EXPECT_EQ(cand.base_row, 3u);
  EXPECT_EQ(cand.site, 50);
}

TEST(OccupancyGridTest, FindNearestTradesXForY) {
  OccupancyGrid grid(test_chip());
  // Row 3 fully blocked: the search must fall to rows 2 or 4 (cost 10)
  // rather than a far x position in row 3 (cost > 10).
  grid.occupy(3, 1, 0, 100);
  db::Cell cell;
  cell.width = 5;
  const PlacementCandidate cand = grid.find_nearest(cell, 50.0, 30.0);
  ASSERT_TRUE(cand.found);
  EXPECT_TRUE(cand.base_row == 2 || cand.base_row == 4);
  EXPECT_EQ(cand.site, 50);
  EXPECT_DOUBLE_EQ(cand.cost, 10.0);
}

TEST(OccupancyGridTest, FindNearestRowWindowRestriction) {
  OccupancyGrid grid(test_chip());
  for (std::size_t r = 2; r <= 4; ++r) grid.occupy(r, 1, 0, 100);
  db::Cell cell;
  cell.width = 5;
  // Unrestricted: finds row 1 or 5 (distance 2 rows).
  EXPECT_TRUE(grid.find_nearest(cell, 50.0, 30.0).found);
  // Restricted to 1 row around the anchor: nothing free.
  EXPECT_FALSE(grid.find_nearest(cell, 50.0, 30.0, 1).found);
}

TEST(OccupancyGridTest, FindNearestFullChipFails) {
  OccupancyGrid grid(test_chip());
  for (std::size_t r = 0; r < 6; ++r) grid.occupy(r, 1, 0, 100);
  db::Cell cell;
  cell.width = 5;
  EXPECT_FALSE(grid.find_nearest(cell, 50.0, 30.0).found);
}

TEST(OccupancyGridTest, OccupyReleaseCellRoundTrip) {
  const db::Chip chip = test_chip();
  OccupancyGrid grid(chip);
  db::Cell cell;
  cell.width = 7;
  cell.height_rows = 2;
  cell.x = 21.0;
  cell.y = 20.0;
  grid.occupy_cell(cell);
  EXPECT_FALSE(grid.is_free(2, 1, 21, 7));
  grid.release_cell(cell);
  EXPECT_TRUE(grid.is_free(2, 1, 21, 7));
}

TEST(OccupancyGridTest, WidthSitesRoundsUp) {
  OccupancyGrid grid(test_chip());
  db::Cell cell;
  cell.width = 6.3;
  EXPECT_EQ(grid.width_sites(cell), 7);
  cell.width = 6.0;
  EXPECT_EQ(grid.width_sites(cell), 6);
}

}  // namespace
}  // namespace mch::legal
