#include "linalg/tridiagonal.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mch::linalg {
namespace {

Tridiagonal chain_laplacian_plus_identity(std::size_t n) {
  Tridiagonal t(n);
  for (std::size_t i = 0; i < n; ++i) t.diag(i) = 3.0;  // 2 + 1
  for (std::size_t i = 0; i + 1 < n; ++i) {
    t.lower(i) = -1.0;
    t.upper(i) = -1.0;
  }
  return t;
}

TEST(TridiagonalTest, MultiplySmall) {
  Tridiagonal t(3);
  t.diag(0) = 2;
  t.diag(1) = 3;
  t.diag(2) = 4;
  t.upper(0) = 1;
  t.upper(1) = 1;
  t.lower(0) = 5;
  t.lower(1) = 6;
  Vector y;
  t.multiply({1, 2, 3}, y);
  // row0: 2*1 + 1*2 = 4; row1: 5*1 + 3*2 + 1*3 = 14; row2: 6*2 + 4*3 = 24
  EXPECT_EQ(y, (Vector{4, 14, 24}));
}

TEST(TridiagonalTest, SolveIdentity) {
  Tridiagonal t(4);
  for (std::size_t i = 0; i < 4; ++i) t.diag(i) = 1.0;
  Vector x;
  ASSERT_TRUE(t.solve({1, 2, 3, 4}, x));
  EXPECT_EQ(x, (Vector{1, 2, 3, 4}));
}

TEST(TridiagonalTest, SolveThenMultiplyRoundTrips) {
  const Tridiagonal t = chain_laplacian_plus_identity(50);
  Rng rng(5);
  Vector rhs(50);
  for (double& v : rhs) v = rng.uniform(-10, 10);
  Vector x, back;
  ASSERT_TRUE(t.solve(rhs, x));
  t.multiply(x, back);
  for (std::size_t i = 0; i < rhs.size(); ++i)
    EXPECT_NEAR(back[i], rhs[i], 1e-9);
}

TEST(TridiagonalTest, SolveSizeOne) {
  Tridiagonal t(1);
  t.diag(0) = 4.0;
  Vector x;
  ASSERT_TRUE(t.solve({8.0}, x));
  EXPECT_DOUBLE_EQ(x[0], 2.0);
}

TEST(TridiagonalTest, SolveEmpty) {
  Tridiagonal t(0);
  Vector x;
  EXPECT_TRUE(t.solve({}, x));
  EXPECT_TRUE(x.empty());
}

TEST(TridiagonalTest, SingularPivotReturnsFalse) {
  Tridiagonal t(2);  // all zeros
  Vector x;
  EXPECT_FALSE(t.solve({1, 1}, x));
}

TEST(TridiagonalTest, ScaledPlusIdentity) {
  Tridiagonal t(3);
  t.diag(0) = 2;
  t.diag(1) = 2;
  t.diag(2) = 2;
  t.upper(0) = -1;
  t.lower(0) = -1;
  const Tridiagonal s = t.scaled_plus_identity(2.0, 1.0);
  EXPECT_DOUBLE_EQ(s.diag(0), 5.0);
  EXPECT_DOUBLE_EQ(s.upper(0), -2.0);
  EXPECT_DOUBLE_EQ(s.lower(0), -2.0);
  EXPECT_DOUBLE_EQ(s.upper(1), 0.0);
}

TEST(TridiagonalTest, AsymmetricSolve) {
  Tridiagonal t(3);
  t.diag(0) = 4;
  t.diag(1) = 5;
  t.diag(2) = 6;
  t.upper(0) = 1;
  t.upper(1) = 2;
  t.lower(0) = -1;
  t.lower(1) = 0.5;
  Vector x, back;
  ASSERT_TRUE(t.solve({1, -2, 3}, x));
  t.multiply(x, back);
  EXPECT_NEAR(back[0], 1, 1e-12);
  EXPECT_NEAR(back[1], -2, 1e-12);
  EXPECT_NEAR(back[2], 3, 1e-12);
}

// Property sweep: random diagonally dominant systems of many sizes.
class TridiagonalSolveSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TridiagonalSolveSweep, RandomDiagonallyDominant) {
  const std::size_t n = GetParam();
  Rng rng(1000 + n);
  Tridiagonal t(n);
  for (std::size_t i = 0; i < n; ++i) t.diag(i) = rng.uniform(2.5, 6.0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    t.lower(i) = rng.uniform(-1.0, 1.0);
    t.upper(i) = rng.uniform(-1.0, 1.0);
  }
  Vector rhs(n);
  for (double& v : rhs) v = rng.uniform(-5, 5);
  Vector x, back;
  ASSERT_TRUE(t.solve(rhs, x));
  t.multiply(x, back);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], rhs[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TridiagonalSolveSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 64, 256, 1000));

// The prefactored Thomas solve is an algebraic rearrangement of solve():
// same factorization, different rounding, so results agree to roundoff
// (not bitwise — which is exactly why MMSIM must use it in BOTH step
// paths; see TridiagonalFactorization in the header).
TEST(TridiagonalFactorizationTest, SolveMatchesClassicThomasToRoundoff) {
  for (const std::size_t n : {1u, 2u, 7u, 64u, 513u}) {
    Rng rng(2000 + n);
    Tridiagonal t(n);
    for (std::size_t i = 0; i < n; ++i) t.diag(i) = rng.uniform(3.0, 6.0);
    for (std::size_t i = 0; i + 1 < n; ++i) {
      t.lower(i) = rng.uniform(-1.0, 1.0);
      t.upper(i) = rng.uniform(-1.0, 1.0);
    }
    Vector rhs(n);
    for (double& v : rhs) v = rng.uniform(-5, 5);

    TridiagonalFactorization lu;
    ASSERT_TRUE(lu.factor(t));
    ASSERT_TRUE(lu.valid());
    ASSERT_EQ(lu.size(), n);

    Vector classic, fast, scratch;
    ASSERT_TRUE(t.solve(rhs, classic));
    lu.solve(rhs, fast, scratch);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(fast[i], classic[i], 1e-10 * (1.0 + std::abs(classic[i])))
          << "n " << n << " i " << i;
  }
}

TEST(TridiagonalFactorizationTest, RepeatedSolvesReuseFactorization) {
  Tridiagonal t(5);
  for (std::size_t i = 0; i < 5; ++i) t.diag(i) = 4.0;
  for (std::size_t i = 0; i + 1 < 5; ++i) {
    t.lower(i) = -1.0;
    t.upper(i) = -1.0;
  }
  TridiagonalFactorization lu;
  ASSERT_TRUE(lu.factor(t));
  Vector x1, x2, scratch, back;
  lu.solve(Vector{1, 0, 0, 0, 1}, x1, scratch);
  lu.solve(Vector{0, 2, 0, 2, 0}, x2, scratch);
  t.multiply(x1, back);
  EXPECT_NEAR(back[0], 1.0, 1e-12);
  EXPECT_NEAR(back[2], 0.0, 1e-12);
  t.multiply(x2, back);
  EXPECT_NEAR(back[1], 2.0, 1e-12);
}

TEST(TridiagonalFactorizationTest, SingularPivotInvalidates) {
  Tridiagonal t(2);
  t.diag(0) = 0.0;  // zero leading pivot
  t.diag(1) = 1.0;
  TridiagonalFactorization lu;
  EXPECT_FALSE(lu.factor(t));
  EXPECT_FALSE(lu.valid());
}

}  // namespace
}  // namespace mch::linalg
