// Constraint construction — the paper's Problems (6), (12), (13).
//
// Given a design and a row assignment, builds the relaxed legalization QP:
//
//   * one variable per single-height cell; one variable per occupied row
//     ("subcell") for each multi-row-height cell (paper §3.2);
//   * within every chip row, the (sub)cells assigned to it are ordered by
//     their global-placement x (ties by cell id), and each adjacent pair
//     (l, j) contributes a spacing row of B:  x_j − x_l ≥ w_l;
//   * fixed cells (macros/obstacles) contribute no variables; a movable
//     cell whose nearest preceding row entity is an obstacle gets the
//     single-sided bound  x_j ≥ obstacle_end  instead of a chain row (the
//     obstacle's right side is relaxed like the chip's right boundary and
//     repaired by the Tetris-like allocation);
//   * the subcell-equality constraints Ex = 0 are folded into the objective
//     with penalty λ (paper Eq. (13)), making the Hessian
//     K = Q + λEᵀE block diagonal with one block per cell:
//     a 1×1 identity block for singles, I_d + λ·Lap(chain) for a d-subcell
//     cell, where E stacks the d−1 chain differences x_{i,k+1} − x_{i,k};
//   * p_v = −x'_i for every variable v of cell i (Q is the identity, so a
//     d-row cell's displacement is weighted d times — moving tall cells
//     disturbs more rows, exactly as in the paper's formulation).
//
// The left chip boundary is the variable bound x ≥ 0 of the LCP; the right
// boundary is relaxed and repaired later by the Tetris-like allocation.
#pragma once

#include <cstddef>
#include <vector>

#include "db/design.h"
#include "lcp/qp.h"
#include "legal/row_assign.h"

namespace mch::legal {

/// Which cell and which of its subcells a QP variable represents.
struct VariableInfo {
  std::size_t cell = 0;
  std::size_t subrow = 0;  ///< 0-based row offset within the cell
};

/// One connected component of the legalization QP, extracted as a
/// self-contained StructuredQp plus the scatter maps back to the global
/// numbering. Local variable/constraint order preserves the global
/// ascending order, so every per-row sum and per-block solve of a
/// sub-problem computes exactly what the monolithic system computes on the
/// same indices.
struct ComponentProblem {
  lcp::StructuredQp qp;
  std::vector<std::size_t> variables;    ///< local var -> global var
  std::vector<std::size_t> constraints;  ///< local row -> global B row
  /// Local rows whose predecessor was not globally adjacent: their
  /// tridiagonal Schur coupling must be dropped to match the monolithic
  /// approximation (see lcp::schur_tridiagonal).
  std::vector<bool> schur_coupling_breaks;
};

/// The assembled QP plus the bookkeeping to map solutions back to cells.
struct LegalizationModel {
  /// cell_first_var value for fixed cells (they have no variables).
  static constexpr std::size_t kNoVariable =
      static_cast<std::size_t>(-1);

  lcp::StructuredQp qp;
  double lambda = 0.0;
  std::vector<VariableInfo> variables;        ///< per QP variable
  std::vector<std::size_t> cell_first_var;    ///< cell -> first variable
  std::vector<std::size_t> cell_var_count;    ///< cell -> #variables (0=fixed)
  RowAssignment base_rows;                    ///< cell -> assigned base row
  /// Variables of each chip row in left-to-right constraint order.
  std::vector<std::vector<std::size_t>> row_variables;
  /// Chip row each spacing constraint (B row) was emitted in. Constraints
  /// are emitted row by row, so this is ascending; the incremental
  /// repartition uses it to walk only the constraints of affected rows.
  std::vector<std::size_t> constraint_row;

  std::size_t num_variables() const { return variables.size(); }

  /// Restored x position of a cell: the mean of its subcell variables
  /// (the exact value when the penalty held them together).
  double cell_x(const lcp::Vector& x, std::size_t cell) const;

  /// Largest |subcell − mean| over the cell's variables: the subcell
  /// mismatch the λ-penalty is meant to suppress (paper §4).
  double cell_mismatch(const lcp::Vector& x, std::size_t cell) const;

  /// Maximum mismatch over all cells.
  double max_mismatch(const lcp::Vector& x) const;

  /// Extracts the sub-problem spanning the given (sorted, ascending)
  /// variable and constraint index sets — one connected component as
  /// computed by legal::partition_model. The variable set must cover whole
  /// Hessian blocks and the constraints must only reference those
  /// variables; both hold for genuine components.
  ComponentProblem component_problem(
      const std::vector<std::size_t>& vars,
      const std::vector<std::size_t>& rows) const;
};

struct ModelOptions {
  double lambda = 1000.0;  ///< the paper's setting for Problem (12)
};

/// Builds the model for the given assignment (does not mutate the design).
LegalizationModel build_model(const db::Design& design,
                              const RowAssignment& base_rows,
                              const ModelOptions& options = {});

}  // namespace mch::legal
