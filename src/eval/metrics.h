// Placement quality metrics reported in the paper's tables.
//
//   * Total displacement, measured in placement-site widths (Table 2's
//     "Total Disp. (sites)"): Σ_i (|x_i − x'_i| + |y_i − y'_i|) / site_width.
//   * Quadratic displacement Σ_i (x−x')² + (y−y')² — the objective of
//     Problem (1); used to compare solver optimality.
//   * HPWL and ΔHPWL relative to the global placement (Table 2).
#pragma once

#include <cstddef>

#include "db/design.h"

namespace mch::eval {

struct DisplacementStats {
  double total_sites = 0.0;      ///< Σ manhattan displacement / site width
  double total_x_sites = 0.0;    ///< x component only
  double total_y_sites = 0.0;    ///< y component only
  double max_sites = 0.0;        ///< max per-cell manhattan displacement
  double mean_sites = 0.0;
  double quadratic = 0.0;        ///< Σ (Δx² + Δy²), distance units
  std::size_t moved_cells = 0;   ///< cells displaced by more than ε
};

/// Displacement of the current positions relative to GP positions.
DisplacementStats displacement(const db::Design& design);

/// Half-perimeter wirelength of all nets at the current cell positions.
double hpwl(const db::Design& design);

/// HPWL at the global-placement positions.
double gp_hpwl(const db::Design& design);

/// (hpwl − gp_hpwl) / gp_hpwl; 0 when the design has no nets.
double delta_hpwl_fraction(const db::Design& design);

}  // namespace mch::eval
