#include "legal/row_assign.h"

#include <cmath>

#include "util/check.h"

namespace mch::legal {

RowAssignment compute_row_assignment(const db::Design& design) {
  check_index_range(design.chip().num_rows, "RowAssignment rows");
  RowAssignment rows;
  rows.reserve(design.num_cells());
  for (const db::Cell& cell : design.cells()) {
    if (cell.erased) {
      // Tombstone: keep the slot so the assignment stays indexed by cell
      // id; nothing downstream reads it.
      rows.push_back(0);
      continue;
    }
    if (cell.fixed) {
      // Obstacles stay where they are; record the row containing their
      // bottom edge for bookkeeping only.
      rows.push_back(static_cast<index_t>(design.nearest_row(cell.y, 1)));
      continue;
    }
    rows.push_back(static_cast<index_t>(design.nearest_legal_row(cell)));
  }
  return rows;
}

RowAssignment assign_rows(db::Design& design) {
  RowAssignment rows = compute_row_assignment(design);
  for (std::size_t i = 0; i < design.num_cells(); ++i) {
    if (design.cells()[i].fixed || design.cells()[i].erased) continue;
    design.cells()[i].y = design.chip().row_y(rows[i]);
  }
  return rows;
}

std::size_t assign_orientations(db::Design& design) {
  const db::Chip& chip = design.chip();
  std::size_t flipped = 0;
  for (db::Cell& cell : design.cells()) {
    if (cell.fixed || cell.erased) continue;
    const auto row = static_cast<std::size_t>(
        std::llround(cell.y / chip.row_height));
    MCH_CHECK_MSG(row + cell.height_rows <= chip.num_rows,
                  "cell " << cell.id << " not row-aligned");
    if (cell.is_even_height()) {
      MCH_CHECK_MSG(chip.rail_at(row) == cell.bottom_rail,
                    "even-height cell " << cell.id
                                        << " on a mismatched rail");
      cell.flipped = false;
    } else {
      cell.flipped = chip.rail_at(row) != cell.bottom_rail;
      if (cell.flipped) ++flipped;
    }
  }
  return flipped;
}

}  // namespace mch::legal
