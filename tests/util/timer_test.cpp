#include "util/timer.h"

#include <gtest/gtest.h>

#include <thread>

#include "util/log.h"

namespace mch {
namespace {

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = timer.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);  // generous upper bound for loaded CI machines
}

TEST(TimerTest, ResetRestartsClock) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.reset();
  EXPECT_LT(timer.seconds(), 0.015);
}

TEST(TimerTest, MillisecondsConsistentWithSeconds) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double s = timer.seconds();
  const double ms = timer.milliseconds();
  EXPECT_NEAR(ms, s * 1e3, 2.0);
}

TEST(LogTest, LevelRoundTrips) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(original);
}

TEST(LogTest, SuppressedLevelsDoNotEvaluate) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  MCH_LOG(kDebug) << [&] {
    ++evaluations;
    return "side effect";
  }();
  EXPECT_EQ(evaluations, 0);
  set_log_level(original);
}

}  // namespace
}  // namespace mch
