#include "linalg/dense_matrix.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace mch::linalg {

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix eye(n, n);
  for (std::size_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  return eye;
}

void DenseMatrix::multiply(const Vector& x, Vector& y) const {
  MCH_CHECK(x.size() == cols_);
  y.assign(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) sum += (*this)(r, c) * x[c];
    y[r] = sum;
  }
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  MCH_CHECK(cols_ == other.rows_);
  DenseMatrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c)
        out(r, c) += a * other(k, c);
    }
  return out;
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

void DenseMatrix::add_scaled(double alpha, const DenseMatrix& other) {
  MCH_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * other.data_[i];
}

double DenseMatrix::frobenius_distance(const DenseMatrix& other) const {
  MCH_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double sum = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double d = data_[i] - other.data_[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

bool DenseMatrix::solve(const Vector& rhs, Vector& x) const {
  MCH_CHECK(rows_ == cols_ && rhs.size() == rows_);
  const std::size_t n = rows_;
  DenseMatrix a = *this;  // working copy
  x = rhs;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot_row = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(a(r, col));
      if (mag > best) {
        best = mag;
        pivot_row = r;
      }
    }
    if (best < 1e-300) return false;
    if (pivot_row != col) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(a(col, c), a(pivot_row, c));
      std::swap(x[col], x[pivot_row]);
    }
    const double inv_pivot = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) * inv_pivot;
      if (factor == 0.0) continue;
      a(r, col) = 0.0;
      for (std::size_t c = col + 1; c < n; ++c) a(r, c) -= factor * a(col, c);
      x[r] -= factor * x[col];
    }
  }
  for (std::size_t r = n; r-- > 0;) {
    double sum = x[r];
    for (std::size_t c = r + 1; c < n; ++c) sum -= a(r, c) * x[c];
    x[r] = sum / a(r, r);
  }
  return true;
}

bool DenseMatrix::inverse(DenseMatrix& inv) const {
  MCH_CHECK(rows_ == cols_);
  const std::size_t n = rows_;
  inv = DenseMatrix(n, n);
  Vector e(n, 0.0), col(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    e.assign(n, 0.0);
    e[c] = 1.0;
    if (!solve(e, col)) return false;
    for (std::size_t r = 0; r < n; ++r) inv(r, c) = col[r];
  }
  return true;
}

bool DenseMatrix::cholesky(DenseMatrix& lower) const {
  MCH_CHECK(rows_ == cols_);
  const std::size_t n = rows_;
  lower = DenseMatrix(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c <= r; ++c) {
      double sum = (*this)(r, c);
      for (std::size_t k = 0; k < c; ++k) sum -= lower(r, k) * lower(c, k);
      if (r == c) {
        if (sum <= 0.0) return false;
        lower(r, c) = std::sqrt(sum);
      } else {
        lower(r, c) = sum / lower(c, c);
      }
    }
  }
  return true;
}

}  // namespace mch::linalg
