// Console/markdown/CSV table formatting for the benchmark harness.
//
// Every bench prints its table with this writer so the output lines up with
// the corresponding table of the paper and can be diffed mechanically
// (EXPERIMENTS.md is generated from these).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mch::io {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row.
  Table& row();

  /// Appends a cell to the current row.
  Table& cell(const std::string& value);
  Table& cell(const char* value) { return cell(std::string(value)); }
  Table& cell(double value, int precision = 2);
  Table& cell(std::size_t value);

  /// Formats d as a percentage ("0.12%").
  Table& percent(double fraction, int precision = 2);

  std::size_t num_rows() const { return rows_.size(); }

  /// Fixed-width aligned text table.
  std::string to_text() const;
  /// GitHub-flavored markdown.
  std::string to_markdown() const;
  /// RFC-4180-ish CSV.
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mch::io
