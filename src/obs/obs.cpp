#include "obs/obs.h"

#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/log.h"
#include "util/rss.h"

namespace mch::obs {

namespace {

std::mutex g_path_mutex;
std::string g_trace_path;
std::string g_metrics_path;

/// Returns true if `name` enables its subsystem; sets `path` when the
/// value is a file path (anything other than "" / "0" / "1").
bool resolve_env(const char* name, std::string& path) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0' || std::strcmp(value, "0") == 0) {
    return false;
  }
  if (std::strcmp(value, "1") != 0) path = value;
  return true;
}

struct EnvInit {
  EnvInit() { init_from_env(); }
};
EnvInit g_env_init;

}  // namespace

void init_from_env() {
  std::string trace_path_value;
  std::string metrics_path_value;
  const bool trace_on = resolve_env("MCH_TRACE", trace_path_value);
  const bool metrics_on = resolve_env("MCH_METRICS", metrics_path_value);
  set_tracing_enabled(trace_on);
  set_metrics_enabled(metrics_on);
  std::lock_guard<std::mutex> lock(g_path_mutex);
  g_trace_path = std::move(trace_path_value);
  g_metrics_path = std::move(metrics_path_value);
}

void set_trace_path(std::string path) {
  set_tracing_enabled(true);
  std::lock_guard<std::mutex> lock(g_path_mutex);
  g_trace_path = std::move(path);
}

const std::string& trace_path() {
  std::lock_guard<std::mutex> lock(g_path_mutex);
  return g_trace_path;
}

void set_metrics_path(std::string path) {
  set_metrics_enabled(true);
  std::lock_guard<std::mutex> lock(g_path_mutex);
  g_metrics_path = std::move(path);
}

const std::string& metrics_path() {
  std::lock_guard<std::mutex> lock(g_path_mutex);
  return g_metrics_path;
}

bool flush_artifacts() {
  std::string trace_out;
  std::string metrics_out;
  {
    std::lock_guard<std::mutex> lock(g_path_mutex);
    trace_out = g_trace_path;
    metrics_out = g_metrics_path;
  }
  bool ok = true;
  if (tracing_enabled() && !trace_out.empty()) {
    if (write_chrome_trace(trace_out)) {
      const TraceStats stats = trace_stats();
      MCH_LOG(kInfo) << "trace: wrote " << stats.buffered << " spans ("
                     << stats.dropped << " dropped) to " << trace_out;
    } else {
      ok = false;
    }
  }
  if (metrics_enabled() && !metrics_out.empty()) {
    if (write_metrics(metrics_out)) {
      MCH_LOG(kInfo) << "metrics: wrote snapshot to " << metrics_out;
    } else {
      ok = false;
    }
  }
  return ok;
}

void sample_rss(const char* phase) {
  if (!metrics_enabled() && !tracing_enabled()) return;
  const double current_mb = util::current_rss_mb();
  const double peak_mb = util::peak_rss_mb();
  gauge("rss.current_mb", "phase", phase).set(current_mb);
  gauge("rss.peak_mb", "phase", phase).set(peak_mb);
}

}  // namespace mch::obs
