#include "baselines/tetris.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "legal/eviction.h"
#include "util/log.h"
#include "util/timer.h"

namespace mch::baselines {

using legal::SiteIndex;

TetrisLegalizerStats tetris_legalize(db::Design& design) {
  Timer timer;
  TetrisLegalizerStats stats;
  const db::Chip& chip = design.chip();

  // Classic Tetris: one frontier per row; a cell placed in a row goes at
  // max(frontier, its GP x) — never left of previously placed cells. This
  // single-pass greedy is what the paper cites as the historical baseline;
  // its weakness (rightward drift at high density) is structural.
  //
  // The ownership-aware occupancy shadows the frontier placement so that
  // cells whose frontiers all overflow the right edge (dense designs) can
  // fall back to the nearest gap the sweep left behind — or, for multi-row
  // cells when even that fails, to a bounded eviction of single-height
  // blockers.
  std::vector<double> frontier(chip.num_rows, 0.0);
  legal::OwnedOccupancy occupancy(chip);

  // Obstacles block the grid up front; the frontier invariant covers them.
  for (std::size_t i = 0; i < design.num_cells(); ++i)
    if (design.cells()[i].fixed) occupancy.place_fixed(design, i);
  for (std::size_t r = 0; r < chip.num_rows; ++r)
    frontier[r] = static_cast<double>(occupancy.max_end(r)) * chip.site_width;

  std::vector<std::size_t> order;
  order.reserve(design.num_cells());
  for (std::size_t i = 0; i < design.num_cells(); ++i)
    if (!design.cells()[i].fixed) order.push_back(i);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double xa = design.cells()[a].gp_x;
    const double xb = design.cells()[b].gp_x;
    if (xa != xb) return xa < xb;
    return a < b;
  });

  for (const std::size_t id : order) {
    db::Cell& cell = design.cells()[id];
    const std::size_t h = cell.height_rows;
    const std::size_t max_base = chip.num_rows - h;
    // Width in whole sites so the final position is site-aligned.
    const SiteIndex w_sites = occupancy.width_sites(cell);
    const double width = static_cast<double>(w_sites) * chip.site_width;

    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t best_row = chip.num_rows;
    double best_x = 0.0;
    const std::size_t anchor = design.nearest_row(cell.gp_y, h);
    // Rows in increasing vertical distance; |Δy| alone bounds the cost, so
    // the scan stops once the ring cannot beat the best candidate.
    for (std::size_t dist = 0; dist <= max_base + anchor; ++dist) {
      const double ring_dy =
          dist == 0 ? 0.0
                    : static_cast<double>(dist - 1) * chip.row_height;
      if (best_row != chip.num_rows && ring_dy > best_cost) break;
      for (const int sign : {+1, -1}) {
        if (dist == 0 && sign < 0) continue;
        const auto row = static_cast<std::ptrdiff_t>(anchor) +
                         sign * static_cast<std::ptrdiff_t>(dist);
        if (row < 0 || row > static_cast<std::ptrdiff_t>(max_base)) continue;
        const auto base = static_cast<std::size_t>(row);
        if (!cell.rail_compatible(chip, base)) continue;
        const double dy = std::abs(chip.row_y(base) - cell.gp_y);
        if (dy >= best_cost) continue;
        double front = 0.0;
        for (std::size_t r = base; r < base + h; ++r)
          front = std::max(front, frontier[r]);
        // Site-aligned position at or right of both the frontier and 0.
        double x = std::max(front, cell.gp_x);
        x = std::ceil(x / chip.site_width - 1e-9) * chip.site_width;
        if (x + width > chip.width()) continue;
        const auto site_check = static_cast<SiteIndex>(
            std::llround(x / chip.site_width));
        if (!occupancy.is_free(base, h, site_check, w_sites)) continue;
        const double cost = std::abs(x - cell.gp_x) + dy;
        if (cost < best_cost) {
          best_cost = cost;
          best_row = base;
          best_x = x;
        }
      }
    }

    if (best_row != chip.num_rows) {
      const auto site = static_cast<SiteIndex>(
          std::llround(best_x / chip.site_width));
      occupancy.place(design, id, best_row, site);
      for (std::size_t r = best_row; r < best_row + h; ++r)
        frontier[r] = best_x + width;
      continue;
    }

    // Every frontier overflowed the right edge: nearest gap left behind by
    // the sweep, with bounded eviction as the last resort.
    if (!occupancy.place_with_eviction(design, id, cell.gp_x, cell.gp_y)) {
      ++stats.failed_cells;
      MCH_LOG(kWarn) << "tetris baseline: no position for cell " << id;
      continue;
    }
    // Re-establish the frontier invariant (frontier >= everything placed):
    // the relocation — and any evicted cells — may have landed beyond it.
    for (std::size_t r = 0; r < chip.num_rows; ++r)
      frontier[r] = std::max(
          frontier[r],
          static_cast<double>(occupancy.max_end(r)) * chip.site_width);
  }

  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace mch::baselines
