#include "legal/model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "db/columns.h"
#include "legal/partition.h"
#include "legal/union_find.h"
#include "util/check.h"

namespace mch::legal {

using lcp::Vector;
using linalg::CooMatrix;
using linalg::CsrMatrix;
using linalg::DenseMatrix;

double LegalizationModel::cell_x(const Vector& x, std::size_t cell) const {
  const std::size_t first = cell_first_var[cell];
  const std::size_t count = cell_var_count[cell];
  MCH_CHECK_MSG(first != kNoVariable && count > 0,
                "cell " << cell << " is fixed — it has no variables");
  double sum = 0.0;
  for (std::size_t k = 0; k < count; ++k) sum += x[first + k];
  return sum / static_cast<double>(count);
}

double LegalizationModel::cell_mismatch(const Vector& x,
                                        std::size_t cell) const {
  const std::size_t first = cell_first_var[cell];
  const std::size_t count = cell_var_count[cell];
  if (first == kNoVariable || count <= 1) return 0.0;
  const double mean = cell_x(x, cell);
  double worst = 0.0;
  for (std::size_t k = 0; k < count; ++k)
    worst = std::max(worst, std::abs(x[first + k] - mean));
  return worst;
}

double LegalizationModel::max_mismatch(const Vector& x) const {
  double worst = 0.0;
  for (std::size_t c = 0; c < cell_first_var.size(); ++c)
    worst = std::max(worst, cell_mismatch(x, c));
  return worst;
}

ComponentProblem LegalizationModel::component_problem(
    const std::vector<index_t>& vars,
    const std::vector<index_t>& rows) const {
  ComponentProblem component;
  component.variables = vars;
  component.constraints = rows;

  // Hessian: the component's variables cover whole blocks (a block is one
  // cell, and a cell is never split across components), so walk the sorted
  // variable list block by block.
  std::size_t i = 0;
  while (i < vars.size()) {
    const std::size_t blk = qp.K.block_of(vars[i]);
    const std::size_t off = qp.K.block_offset(blk);
    const std::size_t d = qp.K.block_size(blk);
    MCH_CHECK_MSG(vars[i] == off && i + d <= vars.size() &&
                      vars[i + d - 1] == off + d - 1,
                  "component variable set splits Hessian block " << blk);
    qp.K.append_block_to(component.qp.K, blk);
    i += d;
  }

  component.qp.p.resize(vars.size());
  for (std::size_t v = 0; v < vars.size(); ++v)
    component.qp.p[v] = qp.p[vars[v]];

  // Constraints, with columns remapped to local indices. Rows and (sorted)
  // columns keep their global relative order, so the CSR built here is the
  // global one restricted to the component.
  const auto local_var = [&](std::size_t global) {
    const auto it = std::lower_bound(vars.begin(), vars.end(), global);
    MCH_CHECK_MSG(it != vars.end() && *it == global,
                  "constraint references variable " << global
                                                    << " outside component");
    return static_cast<std::size_t>(it - vars.begin());
  };
  linalg::CooMatrix coo(rows.size(), vars.size());
  component.qp.b.resize(rows.size());
  component.schur_coupling_breaks.assign(rows.size(), false);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const std::size_t g = rows[r];
    for (std::size_t e = qp.B.row_ptr()[g]; e < qp.B.row_ptr()[g + 1]; ++e)
      coo.add(r, local_var(qp.B.col_idx()[e]), qp.B.values()[e]);
    component.qp.b[r] = qp.b[g];
    component.schur_coupling_breaks[r] = r == 0 || rows[r - 1] + 1 != g;
  }
  component.qp.B = linalg::CsrMatrix::from_coo(coo);
  return component;
}

namespace {

struct FixedInterval {
  double start = 0.0;
  double end = 0.0;
};

/// Steps 1–3 of assembly, shared verbatim by both builders: variables and
/// Hessian blocks, linear term, per-row variable lists, per-row obstacle
/// intervals. Returns the obstacle lists.
std::vector<std::vector<FixedInterval>> build_prefix(
    const db::CellColumns& cols, const db::Chip& chip,
    const RowAssignment& base_rows, const ModelOptions& options,
    LegalizationModel& model) {
  const std::size_t num_cells = cols.size();

  // 1. Variables: one per occupied row of each movable cell, in cell
  //    order. The per-cell Hessian block is I_d + λ·(EᵢᵀEᵢ) with Eᵢ the
  //    chain difference matrix over the cell's d subcells (chain graph
  //    Laplacian). Fixed cells get no variables. Single-height cells —
  //    the dominant case — append their 1×1 identity block through the
  //    scalar fast path, no DenseMatrix staging.
  model.cell_first_var.assign(num_cells, LegalizationModel::kNoVariable);
  model.cell_var_count.assign(num_cells, 0);
  for (std::size_t c = 0; c < num_cells; ++c) {
    if (!cols.movable(c)) continue;
    model.cell_first_var[c] = to_index(model.variables.size());
    const std::size_t d = cols.height_rows[c];
    model.cell_var_count[c] = static_cast<index_t>(d);
    MCH_CHECK_MSG(base_rows[c] + d <= chip.num_rows,
                  "cell " << c << " does not fit vertically");
    for (std::size_t k = 0; k < d; ++k)
      model.variables.push_back(
          {static_cast<index_t>(c), static_cast<index_t>(k)});

    if (d == 1) {
      model.qp.K.add_scalar_block(1.0);
      continue;
    }
    DenseMatrix block(d, d);
    for (std::size_t r = 0; r < d; ++r) block(r, r) = 1.0;
    for (std::size_t r = 0; r + 1 < d; ++r) {
      // Chain edge (r, r+1) of EᵢᵀEᵢ.
      block(r, r) += options.lambda;
      block(r + 1, r + 1) += options.lambda;
      block(r, r + 1) -= options.lambda;
      block(r + 1, r) -= options.lambda;
    }
    model.qp.K.add_block(block);
  }
  const std::size_t n = model.variables.size();

  // 2. Linear term: p_v = −x'_cell for every variable of the cell.
  model.qp.p.resize(n);
  for (std::size_t v = 0; v < n; ++v)
    model.qp.p[v] = -cols.gp_x[model.variables[v].cell];

  // 3. Row membership: variable k of movable cell c occupies chip row
  //    base+k; fixed cells occupy every row their outline touches.
  model.row_variables.assign(chip.num_rows, {});
  for (std::size_t v = 0; v < n; ++v) {
    const VariableInfo& info = model.variables[v];
    model.row_variables[base_rows[info.cell] + info.subrow].push_back(
        static_cast<index_t>(v));
  }

  std::vector<std::vector<FixedInterval>> row_obstacles(chip.num_rows);
  for (std::size_t c = 0; c < num_cells; ++c) {
    if (!cols.fixed(c) || cols.erased(c)) continue;
    const double height =
        static_cast<double>(cols.height_rows[c]) * chip.row_height;
    const auto first_row = static_cast<std::size_t>(std::clamp(
        std::floor(cols.y[c] / chip.row_height + 1e-9), 0.0,
        static_cast<double>(chip.num_rows)));
    const auto end_row = static_cast<std::size_t>(std::clamp(
        std::ceil((cols.y[c] + height) / chip.row_height - 1e-9), 0.0,
        static_cast<double>(chip.num_rows)));
    for (std::size_t r = first_row; r < end_row; ++r)
      row_obstacles[r].push_back({cols.x[c], cols.x[c] + cols.width[c]});
  }
  for (auto& obstacles : row_obstacles)
    std::sort(obstacles.begin(), obstacles.end(),
              [](const FixedInterval& a, const FixedInterval& b) {
                return a.start < b.start;
              });
  return row_obstacles;
}

/// Sorts one chip row's variables into constraint order (ascending GP x,
/// ties by cell id) and walks it, invoking `emit` once per spacing
/// constraint:
///   emit(left, right, bound)
/// with left == kNoVariable for an obstacle lower bound (x_right ≥ bound)
/// and a chain row  x_right − x_left ≥ w_left  otherwise. Emission order is
/// the constraint order of the model.
template <typename Emit>
void walk_row(const db::CellColumns& cols, LegalizationModel& model,
              const std::vector<FixedInterval>& obstacles,
              std::vector<index_t>& row_vars, Emit&& emit) {
  std::sort(row_vars.begin(), row_vars.end(),
            [&](std::size_t a, std::size_t b) {
              const double xa = cols.gp_x[model.variables[a].cell];
              const double xb = cols.gp_x[model.variables[b].cell];
              if (xa != xb) return xa < xb;
              return model.variables[a].cell < model.variables[b].cell;
            });

  constexpr std::size_t kNone = LegalizationModel::kNoVariable;
  std::size_t next_obstacle = 0;
  std::size_t prev_var = kNone;
  double bound = -std::numeric_limits<double>::infinity();
  for (const std::size_t v : row_vars) {
    const double key = cols.gp_x[model.variables[v].cell];
    while (next_obstacle < obstacles.size() &&
           (obstacles[next_obstacle].start + obstacles[next_obstacle].end) /
                   2.0 <=
               key) {
      bound = std::max(bound, obstacles[next_obstacle].end);
      prev_var = kNone;  // chain broken
      ++next_obstacle;
    }
    if (prev_var != kNone) {
      emit(prev_var, v, 0.0);
    } else if (bound > 0.0) {
      emit(kNone, v, bound);
    }
    prev_var = v;
  }
}

/// Shared validation + prefix for both builders.
std::vector<std::vector<FixedInterval>> begin_build(
    const db::Design& design, const db::CellColumns& cols,
    const RowAssignment& base_rows, const ModelOptions& options,
    LegalizationModel& model) {
  MCH_CHECK(base_rows.size() == design.num_cells());
  MCH_CHECK(options.lambda > 0.0);
  check_index_range(design.num_cells(), "design cells");
  model.lambda = options.lambda;
  model.base_rows = base_rows;
  return build_prefix(cols, design.chip(), base_rows, options, model);
}

}  // namespace

LegalizationModel build_model(const db::Design& design,
                              const RowAssignment& base_rows,
                              const ModelOptions& options,
                              ConstraintPartition* partition_out) {
  LegalizationModel model;
  const db::CellColumns cols = db::CellColumns::from(design);
  std::vector<std::vector<FixedInterval>> row_obstacles =
      begin_build(design, cols, base_rows, options, model);
  const db::Chip& chip = design.chip();
  const std::size_t n = model.variables.size();
  check_index_range(n, "QP variables");

  // Partition union-find rides the stream: cell ties now, chain ties as
  // each constraint row is emitted below. finalize_partition canonicalizes
  // independently of union order, so the result is bit-identical to
  // partition_model on the finished model.
  UnionFind uf(partition_out != nullptr ? n : 0);
  if (partition_out != nullptr) {
    for (std::size_t c = 0; c < model.cell_first_var.size(); ++c) {
      const std::size_t first = model.cell_first_var[c];
      if (first == LegalizationModel::kNoVariable) continue;
      for (std::size_t k = 1; k < model.cell_var_count[c]; ++k)
        uf.unite(first, first + k);
    }
  }

  // 4. Stream the spacing constraints chip-row by chip-row straight into
  //    the final CSR arrays. Every row of B has one or two entries; a chain
  //    row's columns are pushed in ascending order with the matching ±1
  //    values, which is exactly the (row, col)-sorted form from_coo would
  //    produce — no COO staging, no pending-constraint list. Each movable
  //    variable emits at most one constraint, so m ≤ n and the reserves
  //    below make emission allocation-free.
  std::vector<std::size_t> row_ptr;
  std::vector<index_t> col_idx;
  Vector values;
  row_ptr.reserve(n + 1);
  row_ptr.push_back(0);
  col_idx.reserve(2 * n);
  values.reserve(2 * n);
  model.qp.b.reserve(n);
  model.constraint_row.reserve(n);

  for (std::size_t r = 0; r < chip.num_rows; ++r) {
    walk_row(cols, model, row_obstacles[r], model.row_variables[r],
             [&](std::size_t left, std::size_t right, double bound) {
               model.constraint_row.push_back(static_cast<index_t>(r));
               if (left != LegalizationModel::kNoVariable) {
                 if (left < right) {
                   col_idx.push_back(static_cast<index_t>(left));
                   col_idx.push_back(static_cast<index_t>(right));
                   values.push_back(-1.0);
                   values.push_back(1.0);
                 } else {
                   col_idx.push_back(static_cast<index_t>(right));
                   col_idx.push_back(static_cast<index_t>(left));
                   values.push_back(1.0);
                   values.push_back(-1.0);
                 }
                 model.qp.b.push_back(
                     cols.width[model.variables[left].cell]);
                 if (partition_out != nullptr) uf.unite(left, right);
               } else {
                 // Obstacle lower bound: x_right >= obstacle end.
                 col_idx.push_back(static_cast<index_t>(right));
                 values.push_back(1.0);
                 model.qp.b.push_back(bound);
               }
               row_ptr.push_back(col_idx.size());
             });
    // The row's obstacle intervals are dead once the row is walked.
    row_obstacles[r].clear();
    row_obstacles[r].shrink_to_fit();
  }

  const std::size_t m = row_ptr.size() - 1;
  model.qp.B = CsrMatrix::from_parts(m, n, std::move(row_ptr),
                                     std::move(col_idx), std::move(values));
  if (partition_out != nullptr)
    *partition_out = finalize_partition(uf, model);
  return model;
}

LegalizationModel build_model_monolithic(const db::Design& design,
                                         const RowAssignment& base_rows,
                                         const ModelOptions& options) {
  LegalizationModel model;
  const db::CellColumns cols = db::CellColumns::from(design);
  std::vector<std::vector<FixedInterval>> row_obstacles =
      begin_build(design, cols, base_rows, options, model);
  const db::Chip& chip = design.chip();
  const std::size_t n = model.variables.size();
  check_index_range(n, "QP variables");

  // 4. Reference path: collect every constraint in a pending list, stage
  //    the whole design in a COO accumulator, convert at the end.
  struct PendingConstraint {
    std::size_t left = LegalizationModel::kNoVariable;  ///< chain partner
    std::size_t right = 0;
    double bound = 0.0;        ///< used when left == kNoVariable
    std::size_t chip_row = 0;  ///< row the constraint was emitted in
  };
  std::vector<PendingConstraint> pending;
  for (std::size_t r = 0; r < chip.num_rows; ++r) {
    walk_row(cols, model, row_obstacles[r], model.row_variables[r],
             [&](std::size_t left, std::size_t right, double bound) {
               pending.push_back({left, right, bound, r});
             });
  }

  const std::size_t m = pending.size();
  CooMatrix coo(m, n);
  coo.reserve(2 * m);
  model.qp.b.resize(m);
  model.constraint_row.resize(m);
  for (std::size_t r = 0; r < m; ++r) {
    const PendingConstraint& pc = pending[r];
    model.constraint_row[r] = static_cast<index_t>(pc.chip_row);
    if (pc.left != LegalizationModel::kNoVariable) {
      coo.add(r, pc.left, -1.0);
      coo.add(r, pc.right, 1.0);
      model.qp.b[r] = cols.width[model.variables[pc.left].cell];
    } else {
      // Obstacle lower bound: x_right >= obstacle end.
      coo.add(r, pc.right, 1.0);
      model.qp.b[r] = pc.bound;
    }
  }
  model.qp.B = CsrMatrix::from_coo(coo);
  return model;
}

}  // namespace mch::legal
