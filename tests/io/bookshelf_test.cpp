#include "io/bookshelf.h"

#include <gtest/gtest.h>

#include <fstream>

#include "gen/generator.h"
#include "util/check.h"

namespace mch::io {
namespace {

/// Writes a small hand-crafted Bookshelf bundle and returns the .aux path.
std::string write_sample_bundle() {
  const std::string dir = testing::TempDir();
  {
    std::ofstream aux(dir + "/sample.aux");
    aux << "RowBasedPlacement : sample.nodes sample.nets sample.wts "
           "sample.pl sample.scl\n";
  }
  {
    std::ofstream nodes(dir + "/sample.nodes");
    nodes << "UCLA nodes 1.0\n"
          << "# comment line\n"
          << "NumNodes : 4\n"
          << "NumTerminals : 1\n"
          << "  a1  4  9\n"
          << "  a2  6  9\n"
          << "  tall  3  18\n"
          << "  blk  20 18 terminal\n";
  }
  {
    std::ofstream pl(dir + "/sample.pl");
    pl << "UCLA pl 1.0\n"
       << "a1   10.5  2.0 : N\n"
       << "a2   20.0  11.0 : N\n"
       << "tall 30.0  0.0  : N\n"
       << "blk  50.0  9.0  : N /FIXED\n";
  }
  {
    std::ofstream scl(dir + "/sample.scl");
    scl << "UCLA scl 1.0\n"
        << "NumRows : 4\n";
    for (int r = 0; r < 4; ++r)
      scl << "CoreRow Horizontal\n"
          << "  Coordinate : " << r * 9 << "\n"
          << "  Height : 9\n"
          << "  Sitewidth : 1\n"
          << "  Sitespacing : 1\n"
          << "  SubrowOrigin : 0 NumSites : 100\n"
          << "End\n";
  }
  {
    std::ofstream nets(dir + "/sample.nets");
    nets << "UCLA nets 1.0\n"
         << "NumNets : 1\n"
         << "NumPins : 2\n"
         << "NetDegree : 2  n0\n"
         << "  a1 I : 1.0 -2.5\n"
         << "  tall O : 0.0 0.0\n";
  }
  {
    std::ofstream wts(dir + "/sample.wts");
    wts << "UCLA wts 1.0\n";
  }
  return dir + "/sample.aux";
}

TEST(BookshelfTest, LoadsSampleBundle) {
  const db::Design design = load_bookshelf(write_sample_bundle());
  EXPECT_EQ(design.name, "sample");
  ASSERT_EQ(design.num_cells(), 4u);
  EXPECT_EQ(design.chip().num_rows, 4u);
  EXPECT_EQ(design.chip().num_sites, 100u);
  EXPECT_DOUBLE_EQ(design.chip().row_height, 9.0);

  const db::Cell& a1 = design.cells()[0];
  EXPECT_DOUBLE_EQ(a1.width, 4.0);
  EXPECT_EQ(a1.height_rows, 1u);
  EXPECT_FALSE(a1.fixed);
  EXPECT_DOUBLE_EQ(a1.gp_x, 10.5);
  EXPECT_DOUBLE_EQ(a1.gp_y, 2.0);

  const db::Cell& tall = design.cells()[2];
  EXPECT_EQ(tall.height_rows, 2u);
  EXPECT_FALSE(tall.fixed);
  // Rail of the nearest legal row (gp_y = 0 → row 0 → VSS).
  EXPECT_EQ(tall.bottom_rail, db::RailType::kVss);

  const db::Cell& blk = design.cells()[3];
  EXPECT_TRUE(blk.fixed);
  EXPECT_EQ(blk.height_rows, 2u);
}

TEST(BookshelfTest, PinOffsetsConvertedFromCenter) {
  const db::Design design = load_bookshelf(write_sample_bundle());
  ASSERT_EQ(design.num_nets(), 1u);
  const db::NetView net = design.nets()[0];
  ASSERT_EQ(net.pins.size(), 2u);
  // a1 is 4x9; Bookshelf offset (1, -2.5) from center → (3, 2) from corner.
  EXPECT_EQ(net.pins[0].cell, 0u);
  EXPECT_DOUBLE_EQ(net.pins[0].dx, 3.0);
  EXPECT_DOUBLE_EQ(net.pins[0].dy, 2.0);
  // tall is 3x18; center offset 0 → corner offset (1.5, 9).
  EXPECT_DOUBLE_EQ(net.pins[1].dx, 1.5);
  EXPECT_DOUBLE_EQ(net.pins[1].dy, 9.0);
}

TEST(BookshelfTest, RoundTripThroughWriter) {
  gen::GeneratorOptions options;
  options.seed = 4;
  options.fixed_macros = 2;
  options.row_height = 9.0;
  db::Design original = gen::generate_random_design(60, 8, 0.4, options);
  original.name = "rt";

  const std::string dir = testing::TempDir();
  save_bookshelf(dir, "rt", original);
  const db::Design loaded = load_bookshelf(dir + "/rt.aux");

  ASSERT_EQ(loaded.num_cells(), original.num_cells());
  ASSERT_EQ(loaded.num_nets(), original.num_nets());
  EXPECT_EQ(loaded.chip().num_rows, original.chip().num_rows);
  EXPECT_EQ(loaded.chip().num_sites, original.chip().num_sites);
  for (std::size_t i = 0; i < loaded.num_cells(); ++i) {
    const db::Cell& a = loaded.cells()[i];
    const db::Cell& b = original.cells()[i];
    EXPECT_DOUBLE_EQ(a.width, b.width) << i;
    EXPECT_EQ(a.height_rows, b.height_rows) << i;
    EXPECT_EQ(a.fixed, b.fixed) << i;
    EXPECT_DOUBLE_EQ(a.gp_x, b.x) << i;  // .pl stores current positions
    EXPECT_DOUBLE_EQ(a.gp_y, b.y) << i;
  }
  for (std::size_t n = 0; n < loaded.num_nets(); ++n) {
    ASSERT_EQ(loaded.nets()[n].pins.size(), original.nets()[n].pins.size());
    for (std::size_t p = 0; p < loaded.nets()[n].pins.size(); ++p) {
      EXPECT_EQ(loaded.nets()[n].pins[p].cell,
                original.nets()[n].pins[p].cell);
      EXPECT_NEAR(loaded.nets()[n].pins[p].dx,
                  original.nets()[n].pins[p].dx, 1e-9);
    }
  }
}

TEST(BookshelfTest, MissingAuxThrows) {
  EXPECT_THROW(load_bookshelf("/nonexistent/x.aux"), CheckError);
}

TEST(BookshelfTest, NonRowMultipleMovableRejected) {
  const std::string dir = testing::TempDir() + "/badheight";
  (void)std::system(("mkdir -p " + dir).c_str());
  {
    std::ofstream aux(dir + "/bad.aux");
    aux << "RowBasedPlacement : bad.nodes bad.nets bad.wts bad.pl bad.scl\n";
  }
  {
    std::ofstream nodes(dir + "/bad.nodes");
    nodes << "UCLA nodes 1.0\nNumNodes : 1\nNumTerminals : 0\n a 4 7.5\n";
  }
  {
    std::ofstream pl(dir + "/bad.pl");
    pl << "UCLA pl 1.0\na 0 0 : N\n";
  }
  {
    std::ofstream scl(dir + "/bad.scl");
    scl << "UCLA scl 1.0\nNumRows : 2\n"
        << "CoreRow Horizontal\n  Coordinate : 0\n  Height : 9\n"
        << "  Sitewidth : 1\n  Sitespacing : 1\n"
        << "  SubrowOrigin : 0 NumSites : 50\nEnd\n"
        << "CoreRow Horizontal\n  Coordinate : 9\n  Height : 9\n"
        << "  Sitewidth : 1\n  Sitespacing : 1\n"
        << "  SubrowOrigin : 0 NumSites : 50\nEnd\n";
  }
  {
    std::ofstream nets(dir + "/bad.nets");
    nets << "UCLA nets 1.0\nNumNets : 0\nNumPins : 0\n";
  }
  EXPECT_THROW(load_bookshelf(dir + "/bad.aux"), CheckError);
}

TEST(BookshelfTest, CoordinateShiftToOrigin) {
  // Rows starting at y = 100, origin x = 50: everything shifts to (0, 0).
  const std::string dir = testing::TempDir() + "/shifted";
  (void)std::system(("mkdir -p " + dir).c_str());
  {
    std::ofstream aux(dir + "/s.aux");
    aux << "RowBasedPlacement : s.nodes s.nets s.wts s.pl s.scl\n";
  }
  {
    std::ofstream nodes(dir + "/s.nodes");
    nodes << "UCLA nodes 1.0\nNumNodes : 1\nNumTerminals : 0\n a 4 9\n";
  }
  {
    std::ofstream pl(dir + "/s.pl");
    pl << "UCLA pl 1.0\na 60 109 : N\n";
  }
  {
    std::ofstream scl(dir + "/s.scl");
    scl << "UCLA scl 1.0\nNumRows : 2\n"
        << "CoreRow Horizontal\n  Coordinate : 100\n  Height : 9\n"
        << "  Sitewidth : 1\n  Sitespacing : 1\n"
        << "  SubrowOrigin : 50 NumSites : 40\nEnd\n"
        << "CoreRow Horizontal\n  Coordinate : 109\n  Height : 9\n"
        << "  Sitewidth : 1\n  Sitespacing : 1\n"
        << "  SubrowOrigin : 50 NumSites : 40\nEnd\n";
  }
  {
    std::ofstream nets(dir + "/s.nets");
    nets << "UCLA nets 1.0\nNumNets : 0\nNumPins : 0\n";
  }
  const db::Design design = load_bookshelf(dir + "/s.aux");
  EXPECT_DOUBLE_EQ(design.cells()[0].gp_x, 10.0);
  EXPECT_DOUBLE_EQ(design.cells()[0].gp_y, 9.0);
}

}  // namespace
}  // namespace mch::io
