// Walk-through of the paper's machinery on a hand-built mixed-height
// design: constructs the Figure-3-style instance, prints the constraint
// system (B, b, p, and the per-cell Hessian blocks of Q + λEᵀE), runs the
// MMSIM, and shows the optimal positions next to the KKT residuals.
//
// This is the example to read to understand what the library does under
// the hood of `mch::legal::legalize`.
#include <cstdio>

#include "db/design.h"
#include "lcp/mmsim.h"
#include "legal/model.h"
#include "legal/row_assign.h"

int main() {
  using namespace mch;

  // A 2-row chip; sites are 1 unit wide, rows 10 units tall.
  db::Chip chip;
  chip.num_rows = 2;
  chip.num_sites = 30;
  chip.site_width = 1.0;
  chip.row_height = 10.0;
  db::Design design(chip);

  // Double-height c1, single-height c2, double-height c3 — the paper's
  // Figure 3 configuration, with GP positions that overlap: all three cells
  // want to sit around x = 5..8.
  db::Cell c1;
  c1.width = 3;
  c1.height_rows = 2;
  c1.bottom_rail = db::RailType::kVss;
  c1.gp_x = 5;
  c1.gp_y = 0;
  design.add_cell(c1);

  db::Cell c2;
  c2.width = 2;
  c2.gp_x = 6;
  c2.gp_y = 0;
  design.add_cell(c2);

  db::Cell c3;
  c3.width = 3;
  c3.height_rows = 2;
  c3.bottom_rail = db::RailType::kVss;
  c3.gp_x = 7;
  c3.gp_y = 0;
  design.add_cell(c3);

  // Step 1: nearest correct rows (all to row 0 here).
  const legal::RowAssignment rows = legal::assign_rows(design);

  // Steps 2–3: subcell splitting + constraint construction.
  const legal::LegalizationModel model = legal::build_model(design, rows);
  std::printf("variables (cell:subrow):");
  for (const legal::VariableInfo& v : model.variables)
    std::printf("  %zu:%zu", v.cell, v.subrow);
  std::printf("\n\nB (spacing constraints, one row each):\n");
  for (std::size_t r = 0; r < model.qp.num_constraints(); ++r) {
    std::printf("  [");
    for (std::size_t c = 0; c < model.num_variables(); ++c)
      std::printf(" %4.1f", model.qp.B.at(r, c));
    std::printf(" ]  >=  %.1f\n", model.qp.b[r]);
  }
  std::printf("\np (negated GP targets):");
  for (const double v : model.qp.p) std::printf("  %.1f", v);
  std::printf("\n\nHessian blocks of K = Q + lambda*EtE (lambda = %.0f):\n",
              model.lambda);
  for (std::size_t b = 0; b < model.qp.K.block_count(); ++b) {
    const auto& block = model.qp.K.block(b);
    std::printf("  cell %zu:\n", b);
    for (std::size_t r = 0; r < block.rows(); ++r) {
      std::printf("    [");
      for (std::size_t c = 0; c < block.cols(); ++c)
        std::printf(" %8.1f", block(r, c));
      std::printf(" ]\n");
    }
  }

  // Steps 4–5: solve the LCP with the MMSIM.
  lcp::MmsimOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 100000;
  const lcp::MmsimSolver solver(model.qp, options);
  const lcp::MmsimResult result = solver.solve();
  std::printf("\nMMSIM: %zu iterations, %s\n", result.iterations,
              result.converged ? "converged" : "NOT converged");
  const lcp::LcpResidual residual = model.qp.lcp_residual(result.z);
  std::printf("KKT residuals: z>=0 viol %.2e, w>=0 viol %.2e, "
              "complementarity %.2e\n",
              residual.z_negativity, residual.w_negativity,
              residual.complementarity);

  std::printf("\noptimal positions (GP -> legalized):\n");
  for (std::size_t c = 0; c < design.num_cells(); ++c) {
    const double x = model.cell_x(result.x, c);
    std::printf("  cell %zu: %.1f -> %.4f  (subcell mismatch %.2e)\n", c,
                design.cells()[c].gp_x, x,
                model.cell_mismatch(result.x, c));
  }
  std::printf("\nNote how the three cells share the displacement burden "
              "(the quadratic optimum) instead of one cell absorbing all "
              "of it, and how c1/c3 remain rail-aligned double-height "
              "blocks.\n");
  return result.converged ? 0 : 1;
}
