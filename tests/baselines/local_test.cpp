#include "baselines/local.h"

#include <gtest/gtest.h>

#include "db/legality.h"
#include "eval/metrics.h"
#include "gen/generator.h"

namespace mch::baselines {
namespace {

db::Design design_for(double density, std::uint64_t seed) {
  gen::GeneratorOptions opts;
  opts.seed = seed;
  return gen::generate_random_design(600, 70, density, opts);
}

class LocalVariantTest : public ::testing::TestWithParam<LocalVariant> {};

TEST_P(LocalVariantTest, ProducesLegalPlacement) {
  db::Design design = design_for(0.55, 71);
  const LocalLegalizerStats stats = local_legalize(design, GetParam());
  EXPECT_EQ(stats.failed_cells, 0u);
  const db::LegalityReport report = db::check_legality(design);
  EXPECT_TRUE(report.legal()) << report.summary();
}

TEST_P(LocalVariantTest, DenseDesignLegal) {
  db::Design design = design_for(0.88, 72);
  const LocalLegalizerStats stats = local_legalize(design, GetParam());
  EXPECT_EQ(stats.failed_cells, 0u);
  EXPECT_TRUE(db::check_legality(design).legal());
}

TEST_P(LocalVariantTest, MostPlacementsDirectAtLowDensity) {
  db::Design design = design_for(0.2, 73);
  const LocalLegalizerStats stats = local_legalize(design, GetParam());
  EXPECT_GT(stats.direct_placements, 9 * stats.window_placements);
}

INSTANTIATE_TEST_SUITE_P(Variants, LocalVariantTest,
                         ::testing::Values(LocalVariant::kBase,
                                           LocalVariant::kImproved));

TEST(LocalLegalizerTest, ImprovedNotWorseThanBaseOnDenseDesigns) {
  double base_total = 0.0;
  double improved_total = 0.0;
  for (std::uint64_t seed = 80; seed < 84; ++seed) {
    db::Design base_design = design_for(0.9, seed);
    db::Design improved_design = base_design;
    local_legalize(base_design, LocalVariant::kBase);
    local_legalize(improved_design, LocalVariant::kImproved);
    base_total += eval::displacement(base_design).total_sites;
    improved_total += eval::displacement(improved_design).total_sites;
  }
  EXPECT_LE(improved_total, base_total * 1.001);
}

TEST(LocalLegalizerTest, StatsAccountForEveryCell) {
  db::Design design = design_for(0.6, 74);
  const LocalLegalizerStats stats =
      local_legalize(design, LocalVariant::kBase);
  EXPECT_EQ(stats.direct_placements + stats.window_placements +
                stats.failed_cells,
            design.num_cells());
}

}  // namespace
}  // namespace mch::baselines
