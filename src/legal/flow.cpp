#include "legal/flow.h"

#include "obs/obs.h"
#include "util/timer.h"

namespace mch::legal {

FlowResult legalize(db::Design& design, const FlowOptions& options) {
  obs::TraceSpan span("legalize");
  span.arg("cells", design.num_cells());
  Timer timer;
  FlowResult result;

  // Step 1: nearest-correct-row assignment (fixes y).
  {
    obs::TraceSpan rows_span("legalize.assign_rows");
    result.base_rows = assign_rows(design);
  }

  // Steps 2–4: subcell split, MMSIM solve, restore (fixes continuous x).
  result.solver =
      mmsim_legalize_continuous(design, result.base_rows, options.solver);

  // Step 5: Tetris-like allocation (sites + right boundary + residual
  // overlaps from finite λ / finite tolerance).
  {
    obs::TraceSpan alloc_span("legalize.allocate");
    result.allocation = tetris_allocate(design);
    alloc_span.arg("unplaced", result.allocation.unplaced_cells);
  }

  // Final orientations: odd-height cells flip to meet their row's rail.
  assign_orientations(design);

  result.total_seconds = timer.seconds();
  if (options.verify) {
    obs::TraceSpan verify_span("legalize.verify");
    result.legality = db::check_legality(design);
    result.legal =
        result.legality.legal() && result.allocation.unplaced_cells == 0;
  }
  obs::histogram("legalize.total_seconds").observe(result.total_seconds);
  span.arg("legal", result.legal)
      .arg("iterations", result.solver.iterations);
  return result;
}

}  // namespace mch::legal
