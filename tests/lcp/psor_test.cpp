#include "lcp/psor.h"

#include <gtest/gtest.h>

#include "lcp/lemke.h"
#include "util/check.h"
#include "util/rng.h"

namespace mch::lcp {
namespace {

TEST(PsorTest, OneDimensional) {
  DenseLcp p;
  p.A = linalg::DenseMatrix::identity(1);
  p.q = {-3};
  const PsorResult r = solve_psor(p);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.z[0], 3.0, 1e-8);
}

TEST(PsorTest, MatchesLemkeOnSpdProblems) {
  Rng rng(41);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 7));
    linalg::DenseMatrix g(n, n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c) g(r, c) = rng.uniform(-1, 1);
    DenseLcp p;
    p.A = g.multiply(g.transpose());
    for (std::size_t i = 0; i < n; ++i) p.A(i, i) += 1.0;
    p.q.resize(n);
    for (double& v : p.q) v = rng.uniform(-4, 4);

    const PsorResult psor = solve_psor(p);
    const LemkeResult lemke = solve_lemke(p);
    ASSERT_TRUE(psor.converged);
    ASSERT_EQ(lemke.status, LemkeStatus::kSolved);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(psor.z[i], lemke.z[i], 1e-6) << "trial " << trial;
  }
}

TEST(PsorTest, ResidualSmallAtSolution) {
  DenseLcp p;
  p.A = linalg::DenseMatrix(3, 3);
  for (int i = 0; i < 3; ++i) p.A(i, i) = 2.0;
  p.A(0, 1) = p.A(1, 0) = 1.0;
  p.A(1, 2) = p.A(2, 1) = 1.0;
  p.q = {-1, -2, -3};
  const PsorResult r = solve_psor(p);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(residual(p, r.z).max(), 1e-7);
}

TEST(PsorTest, NonPositiveDiagonalRejected) {
  DenseLcp p;
  p.A = linalg::DenseMatrix(2, 2);
  p.A(0, 0) = 1.0;
  p.A(1, 1) = 0.0;
  p.q = {-1, -1};
  EXPECT_THROW(solve_psor(p), CheckError);
}

TEST(PsorTest, InvalidOmegaRejected) {
  DenseLcp p;
  p.A = linalg::DenseMatrix::identity(1);
  p.q = {-1};
  PsorOptions o;
  o.omega = 2.5;
  EXPECT_THROW(solve_psor(p, o), CheckError);
}

// Parameterized over relaxation factors: all valid ω converge to the same
// solution.
class PsorOmegaSweep : public ::testing::TestWithParam<double> {};

TEST_P(PsorOmegaSweep, OmegaInvariantSolution) {
  DenseLcp p;
  p.A = linalg::DenseMatrix(2, 2);
  p.A(0, 0) = 3;
  p.A(0, 1) = 1;
  p.A(1, 0) = 1;
  p.A(1, 1) = 3;
  p.q = {-2, -8};
  PsorOptions o;
  o.omega = GetParam();
  const PsorResult r = solve_psor(p, o);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(residual(p, r.z).max(), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Omegas, PsorOmegaSweep,
                         ::testing::Values(0.5, 0.9, 1.0, 1.3, 1.7));

}  // namespace
}  // namespace mch::lcp
